//! The end-to-end compilation pipeline.
//!
//! Mirrors the paper's §3.4 compiler outputs for an MF program:
//!
//! 1. the **transformed source** — split and pipelining applied,
//!    sequentially equivalent to the input;
//! 2. a **Delirium dataflow graph** summarizing the exposed
//!    parallelism;
//! 3. **annotations** — symbolic loop bounds and data sizes the runtime
//!    uses for its scheduling estimates.
//!
//! The driver walks the top-level labeled loops: the first labeled loop
//! is treated as the *reference computation* `A` (pipelined against its
//! own previous iteration), and the remaining statements are split with
//! respect to `A`'s descriptor — exactly the transformation sequence of
//! the paper's §2 example.

use orchestra_analysis::{analyze_program, AnalyzedProgram};
use orchestra_descriptors::{descriptor_of_stmt, SymCtx};
use orchestra_lang::ast::{Program, Stmt};
use orchestra_lang::{parse_program, LangError};
use orchestra_split::{
    pipeline_loop, split_computation, PieceClass, PipelineResult, SplitOptions, SplitResult,
};

/// Everything the compiler produces for one program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The original program.
    pub original: Program,
    /// The transformed program (split + pipelining applied),
    /// semantically equivalent to the original.
    pub transformed: Program,
    /// The pipelining of the reference loop, when one was found and
    /// pipelining exposed concurrency.
    pub pipeline: Option<PipelineResult>,
    /// The split of the trailing computation against the reference
    /// loop's descriptor.
    pub split: Option<SplitResult>,
    /// The full symbolic analysis (SSA, values, assertions, call
    /// groups) of the original program.
    pub analysis: AnalyzedProgram,
}

impl Compiled {
    /// Names of the split pieces in execution order.
    pub fn piece_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(p) = &self.pipeline {
            out.extend(p.split.pieces.iter().map(|x| x.name.clone()));
        }
        if let Some(s) = &self.split {
            out.extend(s.pieces.iter().map(|x| x.name.clone()));
        }
        out
    }

    /// True when any concurrency was exposed.
    pub fn exposed_concurrency(&self) -> bool {
        self.pipeline.as_ref().is_some_and(|p| p.exposed_concurrency())
            || self.split.as_ref().is_some_and(|s| {
                s.has_independent_work()
                    && (!s.loop_splits.is_empty() || !s.moved_read_linked.is_empty())
            })
    }
}

/// Errors from compilation.
#[derive(Debug)]
pub enum CompileError {
    /// The source failed to parse.
    Lang(LangError),
    /// The program failed semantic checking.
    Semantic(Vec<orchestra_lang::CheckError>),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lang(e) => write!(f, "{e}"),
            CompileError::Semantic(errs) => {
                write!(f, "semantic errors:")?;
                for e in errs {
                    write!(f, " {e};")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LangError> for CompileError {
    fn from(e: LangError) -> Self {
        CompileError::Lang(e)
    }
}

/// Compiles MF source text, running the semantic checker first.
///
/// # Errors
///
/// Returns [`CompileError::Lang`] on parse errors and
/// [`CompileError::Semantic`] when the program fails static checking.
pub fn compile_source(src: &str, opts: &SplitOptions) -> Result<Compiled, CompileError> {
    let prog = parse_program(src)?;
    let errors = orchestra_lang::check_program(&prog);
    if !errors.is_empty() {
        return Err(CompileError::Semantic(errors));
    }
    Ok(compile(prog, opts))
}

/// Compiles a parsed program.
pub fn compile(original: Program, opts: &SplitOptions) -> Compiled {
    let analysis = analyze_program(&original);
    let ctx = SymCtx::from_program(&original);

    // Find the reference computation: the first labeled top-level loop.
    let ref_idx = original.body.iter().position(|s| matches!(s, Stmt::Do { label: Some(_), .. }));

    let Some(ref_idx) = ref_idx else {
        return Compiled {
            transformed: original.clone(),
            original,
            pipeline: None,
            split: None,
            analysis,
        };
    };

    let ref_stmt = &original.body[ref_idx];
    let d_ref = descriptor_of_stmt(ref_stmt, &ctx);

    // Pipeline the reference loop against its own previous iteration.
    let pipeline = pipeline_loop(&original, ref_stmt, 1, opts).filter(|p| p.exposed_concurrency());

    // Split everything after the reference loop against its descriptor.
    let tail = &original.body[ref_idx + 1..];
    let split =
        if tail.is_empty() { None } else { Some(split_computation(&original, tail, &d_ref, opts)) };

    // Assemble the transformed program.
    let mut transformed = original.clone();
    if let Some(p) = &pipeline {
        transformed.decls.extend(p.new_decls.iter().cloned());
        transformed.body[ref_idx] = p.transformed.clone();
    }
    if let Some(s) = &split {
        transformed.decls.extend(s.new_decls.iter().cloned());
        transformed.body.truncate(ref_idx + 1);
        transformed.body.extend(s.stmts());
    }

    Compiled { original, transformed, pipeline, split, analysis }
}

/// The classes of a compiled program's pieces, convenient for reports.
pub fn summarize_pieces(c: &Compiled) -> Vec<(String, &'static str)> {
    let class_name = |cl: PieceClass| match cl {
        PieceClass::Independent => "independent",
        PieceClass::Dependent => "dependent",
        PieceClass::Merge => "merge",
    };
    let mut out = Vec::new();
    if let Some(p) = &c.pipeline {
        for piece in &p.split.pieces {
            out.push((format!("{}::{}", p.loop_name, piece.name), class_name(piece.class)));
        }
    }
    if let Some(s) = &c.split {
        for piece in &s.pieces {
            out.push((piece.name.clone(), class_name(piece.class)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::builder::figure1_program;
    use orchestra_lang::interp::{Env, Interp, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn compiles_figure1_end_to_end() {
        let c = compile(figure1_program(8), &SplitOptions::default());
        assert!(c.exposed_concurrency());
        assert!(c.pipeline.is_some(), "A pipelines");
        let s = c.split.as_ref().unwrap();
        assert_eq!(s.loop_splits, vec!["B"]);
        let names = c.piece_names();
        assert!(names.iter().any(|n| n == "B_I"));
        assert!(names.iter().any(|n| n.ends_with("_M")));
    }

    #[test]
    fn transformed_program_is_equivalent() {
        let orig = figure1_program(8);
        let c = compile(orig.clone(), &SplitOptions::default());
        let mut rng = StdRng::seed_from_u64(77);
        let mut inputs = Env::new();
        inputs.insert(
            "mask".into(),
            Value::IntArray {
                dims: vec![(1, 8)],
                data: (0..8).map(|_| rng.gen_range(0..2)).collect(),
            },
        );
        inputs.insert(
            "q".into(),
            Value::FloatArray {
                dims: vec![(1, 8), (1, 8)],
                data: (0..64).map(|_| rng.gen_range(-10..10) as f64 * 0.5).collect(),
            },
        );
        let e1 = Interp::new().run(&orig, &inputs).unwrap();
        let e2 = Interp::new().run(&c.transformed, &inputs).unwrap();
        for key in ["q", "output", "result"] {
            assert_eq!(e1[key], e2[key], "{key} differs");
        }
    }

    #[test]
    fn program_without_labeled_loop_passes_through() {
        let src = "program p\n integer a\n a = 1\nend";
        let c = compile_source(src, &SplitOptions::default()).unwrap();
        assert!(c.pipeline.is_none());
        assert!(c.split.is_none());
        assert_eq!(c.original, c.transformed);
    }

    #[test]
    fn parse_error_propagates() {
        assert!(compile_source("program p\n integer = 1\nend", &SplitOptions::default()).is_err());
    }

    #[test]
    fn semantic_error_propagates() {
        let err = compile_source("program p\n integer a\n a = b\nend", &SplitOptions::default())
            .unwrap_err();
        assert!(matches!(err, CompileError::Semantic(_)));
        assert!(err.to_string().contains("not declared"));
    }

    #[test]
    fn transformed_output_passes_the_checker() {
        // Split/pipelining must emit well-formed programs: every
        // replicated array/accumulator declared, ranks correct.
        let c = compile(figure1_program(8), &SplitOptions::default());
        assert_eq!(orchestra_lang::check_program(&c.transformed), vec![]);
    }

    #[test]
    fn summary_lists_classes() {
        let c = compile(figure1_program(6), &SplitOptions::default());
        let summary = summarize_pieces(&c);
        assert!(summary.iter().any(|(n, cl)| n == "B_I" && *cl == "independent"));
        assert!(summary.iter().any(|(n, cl)| n == "B_D" && *cl == "dependent"));
        assert!(summary.iter().any(|(n, cl)| n == "B_M" && *cl == "merge"));
    }

    #[test]
    fn analysis_is_included() {
        let c = compile(figure1_program(4), &SplitOptions::default());
        assert!(!c.analysis.ssa.cfg.loops.is_empty());
        assert!(c.analysis.aliases.is_clean());
    }
}
