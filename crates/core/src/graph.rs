//! Bridging compiled programs to Delirium graphs.
//!
//! The minimum scheduling grain is fixed by the front end (§4): each
//! piece of the split becomes a graph node whose task count is the
//! piece's loop trip count and whose per-task cost is estimated from
//! static operation counts (scaled by a per-operation time). Dataflow
//! edges come from flow interference between piece descriptors, with
//! data sizes taken from the declared array bounds — the §3.4 "data
//! size and type annotations".
//!
//! Pieces inside a pipelined loop mention the pipeline variable in
//! their bounds (`do i = 1, col-2 and col, n`); their shapes are
//! estimated with the variable bound to its range midpoint.

use crate::compile::Compiled;
use orchestra_analysis::symbolic::{SymExpr, SymValue};
use orchestra_delirium::{DataAnno, DelirGraph, NodeKind};
use orchestra_descriptors::{loop_iteration_descriptor, Descriptor, SymCtx};
use orchestra_lang::ast::{Program, Range, Stmt};
use orchestra_split::{static_op_count, Piece, PieceClass};
use std::collections::HashMap;

/// Simulated time per abstract MF operation (µs). Calibrated to the
/// nCUBE-2's ≈ 7.5 MFLOPS node processors (≈ 0.13 µs per flop).
pub const OP_MICROSECONDS: f64 = 0.13;

/// Fallback cost for pieces whose operation count is not statically
/// calculable (µs).
const DEFAULT_PIECE_COST: f64 = 500.0;

/// Assumed fraction of a masked loop's iterations that actually execute
/// (the paper's compiler reads this from profile data; 50% is the
/// neutral prior). A data mask *selects* iterations — so it scales the
/// task count, not the per-task cost — and complementary-mask pieces
/// (`B_I`/`B_D`) together cover what the original loop covered.
const MASK_DENSITY: f64 = 0.5;

/// Cost variation assumed across the selected iterations of a masked
/// loop (mask clustering makes them mildly irregular).
const MASKED_CV: f64 = 0.25;

/// Constant trip count of a range list under `ctx`, if computable.
fn const_trips(ranges: &[Range], ctx: &SymCtx) -> Option<i64> {
    let mut trips = 0i64;
    for r in ranges {
        let lo = ctx.lin(&r.lo)?.as_constant()?;
        let hi = ctx.lin(&r.hi)?.as_constant()?;
        let step = match &r.step {
            Some(e) => ctx.lin(e)?.as_constant()?,
            None => 1,
        };
        if step == 0 {
            return None;
        }
        trips +=
            if step > 0 { ((hi - lo) / step + 1).max(0) } else { ((lo - hi) / (-step) + 1).max(0) };
    }
    Some(trips)
}

/// Factor applied to merge-piece costs: "merging can often be handled
/// implicitly by the runtime system during data communication" (§2), so
/// only a small residue of the merge's nominal copy cost is charged.
const IMPLICIT_MERGE_FACTOR: f64 = 0.05;

/// Estimates a node kind for a piece: the trip count of its first loop
/// and the per-iteration operation cost. `density` scales the cost for
/// pieces living inside a data-masked (pipelined) loop.
fn piece_shape(piece: &Piece, ctx: &SymCtx, density: f64) -> NodeKind {
    // Find the piece's main loop (skipping accumulator inits).
    let main_loop = piece.stmts.iter().find(|s| matches!(s, Stmt::Do { .. }));
    let total_ops = static_op_count(&piece.stmts, ctx);
    // A merge runs implicitly during data communication: its nominal
    // copy cost shrinks to the residual factor, and it distributes like
    // any other data-parallel operation when it has a loop.
    let merge_factor = if piece.class == PieceClass::Merge { IMPLICIT_MERGE_FACTOR } else { 1.0 };
    if let (Some(Stmt::Do { ranges, .. }), Some(ops)) = (main_loop, total_ops) {
        if let Some(trips) = const_trips(ranges, ctx) {
            if trips > 0 {
                let mean = ops as f64 * OP_MICROSECONDS * density * merge_factor / trips as f64;
                // A data-dependent mask selects a fraction of the
                // iterations (fewer tasks, same per-task cost, mildly
                // irregular); bounds-clipping masks select all of them.
                let (tasks, cv) = if piece_has_data_mask(piece) {
                    ((((trips as f64) * MASK_DENSITY) as usize).max(1), MASKED_CV)
                } else {
                    (trips as usize, 0.1)
                };
                return NodeKind::DataParallel { tasks, mean_cost: mean, cv };
            }
        }
    }
    let cost = total_ops.map(|o| o as f64 * OP_MICROSECONDS).unwrap_or(DEFAULT_PIECE_COST)
        * density
        * merge_factor;
    if piece.class == PieceClass::Merge {
        NodeKind::Merge { cost }
    } else {
        NodeKind::Task { cost }
    }
}

/// True when the piece contains a loop whose `where` mask reads memory
/// (a data-dependent mask like `mask[i] <> 0`), as opposed to the pure
/// scalar bounds tests iteration splitting inserts for range clipping.
fn piece_has_data_mask(piece: &Piece) -> bool {
    fn stmt_has(s: &Stmt) -> bool {
        match s {
            Stmt::Do { mask, body, .. } => {
                let data_mask = mask.as_ref().is_some_and(|m| {
                    let mut arrays = std::collections::BTreeSet::new();
                    m.array_reads(&mut arrays);
                    !arrays.is_empty()
                });
                data_mask || body.iter().any(stmt_has)
            }
            Stmt::If { then_body, else_body, .. } => {
                then_body.iter().any(stmt_has) || else_body.iter().any(stmt_has)
            }
            _ => false,
        }
    }
    piece.stmts.iter().any(stmt_has)
}

/// Bytes estimate for the data flowing between two pieces: the first
/// block written by `from` and read by `to`, sized from its declaration
/// (8-byte elements), 64 elements when unknown.
fn edge_anno(from: &Descriptor, to: &Descriptor, prog: &Program, ctx: &SymCtx) -> DataAnno {
    for w in &from.writes {
        if to.reads.iter().any(|r| r.block == w.block) {
            let count = decl_elems(&w.block, prog, ctx);
            return DataAnno::array(w.block.clone(), count);
        }
    }
    DataAnno::scalar("sync")
}

/// Element count of a declared array (product of constant dims).
fn decl_elems(name: &str, prog: &Program, ctx: &SymCtx) -> u64 {
    prog.decl(name)
        .map(|d| {
            d.dims
                .iter()
                .map(|r| {
                    let lo = ctx.lin(&r.lo).and_then(|e| e.as_constant()).unwrap_or(1);
                    let hi = ctx.lin(&r.hi).and_then(|e| e.as_constant()).unwrap_or(8);
                    (hi - lo + 1).max(1) as u64
                })
                .product::<u64>()
                .max(1)
        })
        .unwrap_or(64)
}

/// A context with the pipeline variable bound to its range midpoint,
/// so per-iteration trip counts like `1..col-2 and col..n` fold.
fn midpoint_ctx(base: &SymCtx, loop_stmt: &Stmt) -> SymCtx {
    let mut ctx = base.clone();
    if let Stmt::Do { var, ranges, .. } = loop_stmt {
        if let Some(r) = ranges.first() {
            if let (Some(lo), Some(hi)) = (
                ctx.lin(&r.lo).and_then(|e| e.as_constant()),
                ctx.lin(&r.hi).and_then(|e| e.as_constant()),
            ) {
                let mid = (lo + hi) / 2;
                ctx.values.insert(var.clone(), SymValue::Expr(SymExpr::constant(mid)));
                ctx.killed.remove(var);
            }
        }
    }
    ctx
}

/// Estimate of the data volume (elements) carried between pipeline
/// iterations: the declared size of the first array the dependent
/// pieces read, divided by the iteration count (one column per
/// iteration in the Figure 1 shape), floor 16 elements.
fn carried_elems(pieces: &[&Piece], prog: &Program, ctx: &SymCtx, iters: usize) -> u64 {
    for piece in pieces {
        for t in &piece.descriptor.reads {
            if prog.decl(&t.block).is_some_and(|d| d.is_array()) {
                return (decl_elems(&t.block, prog, ctx) / iters.max(1) as u64).max(16);
            }
        }
    }
    64
}

/// Builds the Delirium graph for a compiled program.
///
/// Returns the graph and the pipeline iteration counts (group name →
/// trip count of the pipelined loop).
pub fn graph_of_compiled(c: &Compiled) -> (DelirGraph, HashMap<String, usize>) {
    let ctx = SymCtx::from_program(&c.transformed);
    let mut g = DelirGraph::new();
    let mut iters = HashMap::new();
    let mut last_pipeline_merge: Option<usize> = None;
    let mut pipeline_pieces: Vec<(usize, &Piece)> = Vec::new();

    if let Some(p) = &c.pipeline {
        let group = format!("pipe_{}", p.loop_name);
        let trips = if let Stmt::Do { ranges, .. } = &p.transformed {
            const_trips(ranges, &ctx).unwrap_or(1).max(1) as usize
        } else {
            1
        };
        // A data-masked pipelined loop executes only a fraction of its
        // iterations: the mask scales the pipeline's iteration count.
        let loop_density = match &p.transformed {
            Stmt::Do { mask: Some(m), .. } => {
                let mut arrays = std::collections::BTreeSet::new();
                m.array_reads(&mut arrays);
                if arrays.is_empty() {
                    1.0
                } else {
                    MASK_DENSITY
                }
            }
            _ => 1.0,
        };
        let effective_iters = ((trips as f64 * loop_density) as usize).max(1);
        iters.insert(group.clone(), effective_iters);
        let pipe_ctx = midpoint_ctx(&ctx, &p.transformed);
        for piece in &p.split.pieces {
            let kind = piece_shape(piece, &pipe_ctx, 1.0);
            let id =
                g.add_node(format!("{}::{}", p.loop_name, piece.name), kind, Some(group.clone()));
            pipeline_pieces.push((id, piece));
        }
        // Edges inside the group: flow interference in program order.
        for (i, (id_i, piece_i)) in pipeline_pieces.iter().enumerate() {
            for (id_j, piece_j) in pipeline_pieces.iter().skip(i + 1) {
                if piece_j.descriptor.flow_interferes_from(&piece_i.descriptor) {
                    g.add_edge(
                        *id_i,
                        *id_j,
                        edge_anno(&piece_i.descriptor, &piece_j.descriptor, &c.transformed, &ctx),
                    );
                }
            }
        }
        // Carried dependence: each merge feeds the dependent pieces of
        // the next iteration, carrying roughly one iteration's data.
        let merges: Vec<usize> = pipeline_pieces
            .iter()
            .filter(|(_, pc)| pc.class == PieceClass::Merge)
            .map(|(id, _)| *id)
            .collect();
        let dep_pieces: Vec<&Piece> = pipeline_pieces
            .iter()
            .filter(|(_, pc)| pc.class == PieceClass::Dependent)
            .map(|(_, pc)| *pc)
            .collect();
        let deps: Vec<usize> = pipeline_pieces
            .iter()
            .filter(|(_, pc)| pc.class == PieceClass::Dependent)
            .map(|(id, _)| *id)
            .collect();
        let carried = carried_elems(&dep_pieces, &c.transformed, &ctx, trips);
        for &m in &merges {
            for &d in &deps {
                g.add_carried_edge(m, d, DataAnno::array("carried", carried));
            }
            last_pipeline_merge = Some(m);
        }
        if last_pipeline_merge.is_none() {
            last_pipeline_merge = pipeline_pieces.last().map(|(id, _)| *id);
        }
    }

    if let Some(s) = &c.split {
        let mut tail_ids: Vec<(usize, &Piece)> = Vec::new();
        for piece in &s.pieces {
            let kind = piece_shape(piece, &ctx, 1.0);
            let id = g.add_node(piece.name.clone(), kind, None);
            // Dependent/merge pieces wait on the reference computation.
            if piece.class != PieceClass::Independent {
                if let Some(m) = last_pipeline_merge {
                    g.add_edge(m, id, DataAnno::array("ref_out", 1024));
                }
            }
            for (prev_id, prev_piece) in &tail_ids {
                if piece.descriptor.flow_interferes_from(&prev_piece.descriptor) {
                    g.add_edge(
                        *prev_id,
                        id,
                        edge_anno(&prev_piece.descriptor, &piece.descriptor, &c.transformed, &ctx),
                    );
                }
            }
            tail_ids.push((id, piece));
        }
    }

    (g, iters)
}

/// Builds the *baseline* graph of the original program: one node per
/// top-level computation, chained sequentially — the traditional
/// barrier-between-sub-computations compilation.
///
/// A loop whose iterations carry dependences becomes a *sequential
/// phase group* (a self-carried pipeline node executed `trips` times,
/// each iteration exposing only the inner loop's parallelism); an
/// independent loop becomes one data-parallel operation.
///
/// Returns the graph and the phase-group iteration counts.
pub fn baseline_graph(prog: &Program) -> (DelirGraph, HashMap<String, usize>) {
    let ctx = SymCtx::from_program(prog);
    let mut g = DelirGraph::new();
    let mut iters = HashMap::new();
    let mut prev: Option<usize> = None;
    for (i, s) in prog.body.iter().enumerate() {
        let name = match s {
            Stmt::Do { label: Some(l), .. } => l.clone(),
            _ => format!("stmt{i}"),
        };
        let id = if let Stmt::Do { var, ranges, body, .. } = s {
            let dependent_iterations = loop_iteration_descriptor(s, &ctx)
                .map(|iter| {
                    let shifted = iter.descriptor.subst(var, &SymExpr::name(var).offset(1));
                    iter.descriptor.interferes(&shifted)
                })
                .unwrap_or(true);
            let outer_trips = const_trips(ranges, &ctx).unwrap_or(1).max(1);
            if dependent_iterations {
                // Sequential phases: per-iteration inner parallelism.
                let pipe_ctx = midpoint_ctx(&ctx, s);
                let inner_tasks = body
                    .iter()
                    .find_map(|b| match b {
                        Stmt::Do { ranges, .. } => const_trips(ranges, &pipe_ctx),
                        _ => None,
                    })
                    .unwrap_or(1)
                    .max(1);
                let per_iter_ops = static_op_count(body, &pipe_ctx).unwrap_or(1000);
                let mean = per_iter_ops as f64 * OP_MICROSECONDS / inner_tasks as f64;
                let masked = matches!(s, Stmt::Do { mask: Some(_), .. });
                let cv = if masked { MASKED_CV } else { 0.1 };
                let effective_iters = if masked {
                    ((outer_trips as f64 * MASK_DENSITY) as usize).max(1)
                } else {
                    outer_trips as usize
                };
                let group = format!("seq_{name}");
                let id = g.add_node(
                    name,
                    NodeKind::DataParallel { tasks: inner_tasks as usize, mean_cost: mean, cv },
                    Some(group.clone()),
                );
                let carried = (inner_tasks as u64).max(16);
                g.add_carried_edge(id, id, DataAnno::array("carried", carried));
                iters.insert(group, effective_iters);
                id
            } else {
                let ops = static_op_count(std::slice::from_ref(s), &ctx).unwrap_or(1000);
                let mean = ops as f64 * OP_MICROSECONDS / outer_trips as f64;
                let masked = matches!(s, Stmt::Do { mask: Some(_), .. });
                let tasks = if masked {
                    ((outer_trips as f64 * MASK_DENSITY) as usize).max(1)
                } else {
                    outer_trips as usize
                };
                let cv = if masked { MASKED_CV } else { 0.1 };
                g.add_node(name, NodeKind::DataParallel { tasks, mean_cost: mean, cv }, None)
            }
        } else {
            let ops = static_op_count(std::slice::from_ref(s), &ctx).unwrap_or(100);
            g.add_node(name, NodeKind::Task { cost: ops as f64 * OP_MICROSECONDS }, None)
        };
        if let Some(p) = prev {
            g.add_edge(p, id, DataAnno::array("seq", 1024));
        }
        prev = Some(id);
    }
    (g, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use orchestra_lang::builder::figure1_program;
    use orchestra_split::SplitOptions;

    #[test]
    fn figure1_graph_validates() {
        let c = compile(figure1_program(16), &SplitOptions::default());
        let (g, iters) = graph_of_compiled(&c);
        g.validate().unwrap();
        assert!(!g.nodes.is_empty());
        assert_eq!(
            iters.values().copied().max(),
            Some(8),
            "A executes ≈ density·n = 8 masked iterations"
        );
    }

    #[test]
    fn figure1_graph_has_expected_structure() {
        let c = compile(figure1_program(12), &SplitOptions::default());
        let (g, _) = graph_of_compiled(&c);
        // B_I exists and has no non-carried predecessors (independent).
        let bi = g.node_by_name("B_I").expect("B_I node");
        assert!(g.preds(bi).is_empty(), "B_I runs concurrently with the pipeline");
        // B_D waits on the pipeline's merge.
        let bd = g.node_by_name("B_D").expect("B_D node");
        assert!(!g.preds(bd).is_empty());
        // A pipeline group exists with a carried edge.
        assert!(g.edges.iter().any(|e| e.carried));
        assert!(g.nodes.iter().any(|n| n.group.is_some()));
    }

    #[test]
    fn pipeline_pieces_get_real_costs() {
        let c = compile(figure1_program(32), &SplitOptions::default());
        let (g, _) = graph_of_compiled(&c);
        // The pipelined A_I piece must be a data-parallel op with a
        // sensible trip count, not a default-cost task.
        let ai = g
            .nodes
            .iter()
            .find(|n| n.group.is_some() && n.name.ends_with("_I"))
            .expect("pipelined A_I");
        let NodeKind::DataParallel { tasks, mean_cost, .. } = ai.kind else {
            panic!("A_I should be data-parallel, got {:?}", ai.kind)
        };
        assert!((28..=32).contains(&tasks), "≈ n-1 iterations, got {tasks}");
        assert!(mean_cost > 0.0 && mean_cost < 50.0, "per-element cost, got {mean_cost}");
    }

    #[test]
    fn data_parallel_nodes_have_trip_counts() {
        let c = compile(figure1_program(12), &SplitOptions::default());
        let (g, _) = graph_of_compiled(&c);
        let bi = g.node_by_name("B_I").unwrap();
        let NodeKind::DataParallel { tasks, mean_cost, .. } = g.nodes[bi].kind else {
            panic!("B_I should be data-parallel, got {:?}", g.nodes[bi].kind)
        };
        assert_eq!(tasks, 6, "B_I covers the mask-density share of the i loop");
        assert!(mean_cost > 0.0);
    }

    #[test]
    fn baseline_models_sequential_phases() {
        let p = figure1_program(8);
        let (g, iters) = baseline_graph(&p);
        g.validate().unwrap();
        assert_eq!(g.nodes.len(), 2);
        // A's iterations carry dependences (via result/q): phase group.
        let a = g.node_by_name("A").unwrap();
        assert!(g.nodes[a].group.is_some(), "A is a sequential phase group");
        assert_eq!(iters.get("seq_A"), Some(&4), "density · 8 iterations");
        // B's iterations are independent: plain data-parallel node.
        let b = g.node_by_name("B").unwrap();
        assert!(g.nodes[b].group.is_none());
        let NodeKind::DataParallel { tasks, .. } = g.nodes[b].kind else { panic!() };
        assert_eq!(tasks, 8);
    }

    #[test]
    fn masked_loops_are_thinned_and_mildly_irregular() {
        let p = figure1_program(8);
        let (g, iters) = baseline_graph(&p);
        let a = g.node_by_name("A").unwrap();
        let NodeKind::DataParallel { cv, .. } = g.nodes[a].kind else { panic!() };
        assert!(cv > 0.2, "masked phases carry extra irregularity");
        assert_eq!(iters.get("seq_A"), Some(&4), "half the iterations execute");
        let b = g.node_by_name("B").unwrap();
        let NodeKind::DataParallel { cv, tasks, .. } = g.nodes[b].kind else { panic!() };
        assert!(cv <= 0.2, "unmasked loop is regular");
        assert_eq!(tasks, 8, "unmasked loop keeps all iterations");
    }
}
