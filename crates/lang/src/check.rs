//! Static semantic checking for MF programs.
//!
//! Catches at compile time what the interpreter would otherwise fault
//! on at run time: undeclared variables, indexing scalars (or not
//! indexing arrays), rank mismatches, duplicate declarations, unknown
//! procedures and intrinsics, and arity errors.

use crate::ast::{Expr, LValue, ProcDef, Program, Range, Stmt};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A semantic error found by [`check_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A name declared more than once in the same scope.
    DuplicateDeclaration(String),
    /// A variable used without a declaration.
    Undeclared(String),
    /// An array used without indices (outside call arguments).
    ArrayUsedAsScalar(String),
    /// A scalar (or induction variable) indexed like an array.
    ScalarIndexed(String),
    /// Wrong number of indices for an array.
    RankMismatch {
        /// The array.
        name: String,
        /// Declared rank.
        expected: usize,
        /// Indices supplied.
        got: usize,
    },
    /// Call to an unknown procedure.
    UnknownProcedure(String),
    /// Call to an unknown intrinsic function.
    UnknownIntrinsic(String),
    /// Wrong number of arguments to a procedure.
    ProcedureArity {
        /// The procedure.
        name: String,
        /// Declared parameter count.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::DuplicateDeclaration(n) => write!(f, "`{n}` declared twice"),
            CheckError::Undeclared(n) => write!(f, "`{n}` is not declared"),
            CheckError::ArrayUsedAsScalar(n) => write!(f, "array `{n}` used without indices"),
            CheckError::ScalarIndexed(n) => write!(f, "scalar `{n}` indexed like an array"),
            CheckError::RankMismatch { name, expected, got } => {
                write!(f, "array `{name}` has rank {expected}, indexed with {got}")
            }
            CheckError::UnknownProcedure(n) => write!(f, "unknown procedure `{n}`"),
            CheckError::UnknownIntrinsic(n) => write!(f, "unknown intrinsic `{n}`"),
            CheckError::ProcedureArity { name, expected, got } => {
                write!(f, "procedure `{name}` takes {expected} arguments, got {got}")
            }
        }
    }
}

const INTRINSICS: &[(&str, usize)] = &[
    ("f", 1),
    ("g", 1),
    ("h", 1),
    ("sqrt", 1),
    ("sin", 1),
    ("cos", 1),
    ("exp", 1),
    ("abs", 1),
    ("min", 2),
    ("max", 2),
];

/// Name → rank (0 for scalars) in one scope.
type Scope = BTreeMap<String, usize>;

struct Checker<'a> {
    prog: &'a Program,
    errors: Vec<CheckError>,
}

/// Checks a whole program; returns every semantic error found.
pub fn check_program(prog: &Program) -> Vec<CheckError> {
    let mut c = Checker { prog, errors: Vec::new() };
    let mut scope = Scope::new();
    for d in &prog.decls {
        if scope.insert(d.name.clone(), d.dims.len()).is_some() {
            c.errors.push(CheckError::DuplicateDeclaration(d.name.clone()));
        }
        for r in &d.dims {
            c.check_range(r, &scope);
        }
        if let Some(init) = &d.init {
            c.check_expr(init, &scope);
        }
    }
    let mut proc_names = BTreeSet::new();
    for p in &prog.procs {
        if !proc_names.insert(p.name.as_str()) {
            c.errors.push(CheckError::DuplicateDeclaration(p.name.clone()));
        }
        c.check_proc(p);
    }
    c.check_stmts(&prog.body, &mut scope.clone());
    c.errors
}

impl Checker<'_> {
    fn check_proc(&mut self, p: &ProcDef) {
        let mut scope = Scope::new();
        for d in p.params.iter().chain(&p.locals) {
            if scope.insert(d.name.clone(), d.dims.len()).is_some() {
                self.errors.push(CheckError::DuplicateDeclaration(d.name.clone()));
            }
        }
        self.check_stmts(&p.body, &mut scope);
    }

    fn check_stmts(&mut self, stmts: &[Stmt], scope: &mut Scope) {
        for s in stmts {
            match s {
                Stmt::Assign { target, value } => {
                    match target {
                        LValue::Var(name) => match scope.get(name) {
                            None => self.errors.push(CheckError::Undeclared(name.clone())),
                            Some(&rank) if rank > 0 => {
                                self.errors.push(CheckError::ArrayUsedAsScalar(name.clone()))
                            }
                            _ => {}
                        },
                        LValue::Index(name, idx) => {
                            self.check_indexing(name, idx.len(), scope);
                            for e in idx {
                                self.check_expr(e, scope);
                            }
                        }
                    }
                    self.check_expr(value, scope);
                }
                Stmt::Do { var, ranges, mask, body, .. } => {
                    for r in ranges {
                        self.check_range_loop(r, scope);
                    }
                    // The induction variable is implicitly a scalar for
                    // the loop's extent (and stays visible after, as in
                    // FORTRAN).
                    let shadowed = scope.insert(var.clone(), 0);
                    if let Some(m) = mask {
                        self.check_expr(m, scope);
                    }
                    self.check_stmts(body, scope);
                    if let Some(old) = shadowed {
                        scope.insert(var.clone(), old);
                    }
                }
                Stmt::If { cond, then_body, else_body } => {
                    self.check_expr(cond, scope);
                    self.check_stmts(then_body, scope);
                    self.check_stmts(else_body, scope);
                }
                Stmt::Call { name, args } => {
                    match self.prog.proc(name) {
                        None => self.errors.push(CheckError::UnknownProcedure(name.clone())),
                        Some(p) if p.params.len() != args.len() => {
                            self.errors.push(CheckError::ProcedureArity {
                                name: name.clone(),
                                expected: p.params.len(),
                                got: args.len(),
                            })
                        }
                        Some(_) => {}
                    }
                    for a in args {
                        // Whole-array arguments are allowed in calls.
                        if let Expr::Var(n) = a {
                            if !scope.contains_key(n) {
                                self.errors.push(CheckError::Undeclared(n.clone()));
                            }
                        } else {
                            self.check_expr(a, scope);
                        }
                    }
                }
            }
        }
    }

    fn check_range(&mut self, r: &Range, scope: &Scope) {
        self.check_expr(&r.lo, scope);
        self.check_expr(&r.hi, scope);
        if let Some(s) = &r.step {
            self.check_expr(s, scope);
        }
    }

    fn check_range_loop(&mut self, r: &Range, scope: &Scope) {
        self.check_range(r, scope);
    }

    fn check_indexing(&mut self, name: &str, got: usize, scope: &Scope) {
        match scope.get(name) {
            None => self.errors.push(CheckError::Undeclared(name.to_string())),
            Some(0) => self.errors.push(CheckError::ScalarIndexed(name.to_string())),
            Some(&rank) if rank != got => self.errors.push(CheckError::RankMismatch {
                name: name.to_string(),
                expected: rank,
                got,
            }),
            Some(_) => {}
        }
    }

    fn check_expr(&mut self, e: &Expr, scope: &Scope) {
        match e {
            Expr::IntLit(_) | Expr::FloatLit(_) => {}
            Expr::Var(name) => match scope.get(name) {
                None => self.errors.push(CheckError::Undeclared(name.clone())),
                Some(&rank) if rank > 0 => {
                    self.errors.push(CheckError::ArrayUsedAsScalar(name.clone()))
                }
                _ => {}
            },
            Expr::Index(name, idx) => {
                self.check_indexing(name, idx.len(), scope);
                for i in idx {
                    self.check_expr(i, scope);
                }
            }
            Expr::Bin(_, l, r) => {
                self.check_expr(l, scope);
                self.check_expr(r, scope);
            }
            Expr::Un(_, i) => self.check_expr(i, scope),
            Expr::Call(name, args) => {
                match INTRINSICS.iter().find(|(n, _)| n == name) {
                    None => self.errors.push(CheckError::UnknownIntrinsic(name.clone())),
                    Some((_, arity)) if *arity != args.len() => {
                        self.errors.push(CheckError::ProcedureArity {
                            name: name.clone(),
                            expected: *arity,
                            got: args.len(),
                        })
                    }
                    Some(_) => {}
                }
                for a in args {
                    self.check_expr(a, scope);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn errors(src: &str) -> Vec<CheckError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn clean_program_has_no_errors() {
        let e = errors(
            "program t\n integer n = 4\n float x[1..n]\n do i = 1, n { x[i] = f(1.0) + i }\nend",
        );
        assert_eq!(e, vec![]);
    }

    #[test]
    fn figure1_is_clean() {
        assert_eq!(check_program(&crate::builder::figure1_program(8)), vec![]);
    }

    #[test]
    fn undeclared_variable() {
        let e = errors("program t\n integer a\n a = b\nend");
        assert_eq!(e, vec![CheckError::Undeclared("b".into())]);
    }

    #[test]
    fn duplicate_declaration() {
        let e = errors("program t\n integer a, a\nend");
        assert_eq!(e, vec![CheckError::DuplicateDeclaration("a".into())]);
    }

    #[test]
    fn scalar_indexed() {
        let e = errors("program t\n integer a\n a[1] = 2\nend");
        assert_eq!(e, vec![CheckError::ScalarIndexed("a".into())]);
    }

    #[test]
    fn array_used_as_scalar() {
        let e = errors("program t\n integer n = 2, s\n integer x[1..n]\n s = x\nend");
        assert_eq!(e, vec![CheckError::ArrayUsedAsScalar("x".into())]);
    }

    #[test]
    fn rank_mismatch() {
        let e = errors("program t\n integer n = 2\n integer x[1..n, 1..n]\n x[1] = 2\nend");
        assert_eq!(e, vec![CheckError::RankMismatch { name: "x".into(), expected: 2, got: 1 }]);
    }

    #[test]
    fn unknown_procedure_and_arity() {
        let e = errors(
            "program t\n integer n = 2\n float x[1..n]\n proc p(float x[1..n]) { x[1] = 0.0 }\n call p(x, x)\n call q(x)\nend",
        );
        assert!(e.contains(&CheckError::ProcedureArity { name: "p".into(), expected: 1, got: 2 }));
        assert!(e.contains(&CheckError::UnknownProcedure("q".into())));
    }

    #[test]
    fn unknown_intrinsic_and_arity() {
        let e = errors("program t\n float y\n y = zeta(1.0) + min(1.0)\nend");
        assert!(e.contains(&CheckError::UnknownIntrinsic("zeta".into())));
        assert!(e.contains(&CheckError::ProcedureArity {
            name: "min".into(),
            expected: 2,
            got: 1
        }));
    }

    #[test]
    fn induction_variable_in_scope_only_logically() {
        // Using the loop variable after the loop is FORTRAN-legal here.
        let e = errors(
            "program t\n integer n = 3, s\n integer x[1..n]\n do i = 1, n { x[i] = i }\n s = 1\nend",
        );
        assert_eq!(e, vec![]);
    }

    #[test]
    fn whole_array_call_argument_allowed() {
        let e = errors(
            "program t\n integer n = 2\n float x[1..n]\n proc z(float a[1..n], integer n) { a[1] = 0.0 }\n call z(x, n)\nend",
        );
        assert_eq!(e, vec![]);
    }

    #[test]
    fn errors_display() {
        let e = CheckError::RankMismatch { name: "q".into(), expected: 2, got: 3 };
        assert!(e.to_string().contains("rank 2"));
    }

    #[test]
    fn transformed_programs_stay_clean() {
        // The split transformation's output must also type-check.
        use crate::builder::figure1_program;
        let p = figure1_program(8);
        assert_eq!(check_program(&p), vec![]);
    }
}
