//! Recursive-descent parser for the MF language.
//!
//! Grammar sketch (see crate docs for the informal description):
//!
//! ```text
//! program    := 'program' IDENT decl* proc* stmt* 'end'
//! decl       := ('integer'|'float') item (',' item)*
//! item       := IDENT ('[' declrange (',' declrange)* ']')? ('=' expr)?
//! declrange  := arith '..' arith
//! proc       := 'proc' IDENT '(' paramlist? ')' '{' decl* stmt* '}'
//! stmt       := do | if | call | assign
//! do         := (IDENT ':')? 'do' IDENT '=' looprange ('and' looprange)*
//!                  ('where' '(' expr ')')? '{' stmt* '}'
//! looprange  := arith ',' arith (',' arith)?
//! if         := 'if' '(' expr ')' '{' stmt* '}'
//!                  ('else' ('{' stmt* '}' | if))?
//! call       := 'call' IDENT '(' exprlist? ')'
//! assign     := lvalue '=' expr
//! ```
//!
//! Inside loop-range positions, expressions are parsed at comparison
//! precedence (no `and`/`or`) so that `do i = 1, a-1 and a+1, n`
//! unambiguously reads `and` as the discontinuous-range connector.

use crate::ast::{BinOp, Decl, Expr, LValue, ProcDef, Program, Range, Stmt, Type, UnOp};
use crate::error::{LangError, LangResult};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parses a complete MF program.
///
/// # Errors
///
/// Returns [`LangError::Lex`] or [`LangError::Parse`] with the position
/// of the first offending token.
///
/// # Examples
///
/// ```
/// # use orchestra_lang::parse_program;
/// let p = parse_program("program p\n integer n = 3\nend").unwrap();
/// assert_eq!(p.decls.len(), 1);
/// ```
pub fn parse_program(src: &str) -> LangResult<Program> {
    let tokens = tokenize(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.tokens[self.pos];
        (t.line, t.col)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, want: &TokenKind) -> LangResult<()> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            let (l, c) = self.here();
            Err(LangError::parse(format!("expected `{want}`, found `{}`", self.peek()), l, c))
        }
    }

    fn ident(&mut self) -> LangResult<String> {
        if let TokenKind::Ident(s) = self.peek().clone() {
            self.bump();
            Ok(s)
        } else {
            let (l, c) = self.here();
            Err(LangError::parse(format!("expected identifier, found `{}`", self.peek()), l, c))
        }
    }

    fn program(&mut self) -> LangResult<Program> {
        self.eat(&TokenKind::Program)?;
        let name = self.ident()?;
        let mut prog = Program::new(name);
        while matches!(self.peek(), TokenKind::Integer | TokenKind::FloatKw) {
            prog.decls.extend(self.decl_line()?);
        }
        while matches!(self.peek(), TokenKind::Proc) {
            prog.procs.push(self.proc_def()?);
        }
        while !matches!(self.peek(), TokenKind::End | TokenKind::Eof) {
            prog.body.push(self.stmt()?);
        }
        self.eat(&TokenKind::End)?;
        Ok(prog)
    }

    fn decl_line(&mut self) -> LangResult<Vec<Decl>> {
        let ty = match self.bump() {
            TokenKind::Integer => Type::Int,
            TokenKind::FloatKw => Type::Float,
            other => {
                let (l, c) = self.here();
                return Err(LangError::parse(format!("expected type, found `{other}`"), l, c));
            }
        };
        let mut out = Vec::new();
        loop {
            out.push(self.decl_item(ty)?);
            if matches!(self.peek(), TokenKind::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn decl_item(&mut self, ty: Type) -> LangResult<Decl> {
        let name = self.ident()?;
        let mut dims = Vec::new();
        if matches!(self.peek(), TokenKind::LBracket) {
            self.bump();
            loop {
                let lo = self.arith()?;
                self.eat(&TokenKind::DotDot)?;
                let hi = self.arith()?;
                dims.push(Range::new(lo, hi));
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.eat(&TokenKind::RBracket)?;
        }
        let init = if matches!(self.peek(), TokenKind::Eq) && dims.is_empty() {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Decl { name, ty, dims, init })
    }

    fn proc_def(&mut self) -> LangResult<ProcDef> {
        self.eat(&TokenKind::Proc)?;
        let name = self.ident()?;
        self.eat(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                let ty = match self.bump() {
                    TokenKind::Integer => Type::Int,
                    TokenKind::FloatKw => Type::Float,
                    other => {
                        let (l, c) = self.here();
                        return Err(LangError::parse(
                            format!("expected parameter type, found `{other}`"),
                            l,
                            c,
                        ));
                    }
                };
                params.push(self.decl_item(ty)?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&TokenKind::RParen)?;
        self.eat(&TokenKind::LBrace)?;
        let mut locals = Vec::new();
        while matches!(self.peek(), TokenKind::Integer | TokenKind::FloatKw) {
            locals.extend(self.decl_line()?);
        }
        let mut body = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
            body.push(self.stmt()?);
        }
        self.eat(&TokenKind::RBrace)?;
        Ok(ProcDef { name, params, locals, body })
    }

    fn block(&mut self) -> LangResult<Vec<Stmt>> {
        self.eat(&TokenKind::LBrace)?;
        let mut out = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
            out.push(self.stmt()?);
        }
        self.eat(&TokenKind::RBrace)?;
        Ok(out)
    }

    fn stmt(&mut self) -> LangResult<Stmt> {
        match self.peek() {
            TokenKind::Do => self.do_stmt(None),
            TokenKind::If => self.if_stmt(),
            TokenKind::Call => self.call_stmt(),
            TokenKind::Ident(_) if matches!(self.peek2(), TokenKind::Colon) => {
                let label = self.ident()?;
                self.eat(&TokenKind::Colon)?;
                self.do_stmt(Some(label))
            }
            TokenKind::Ident(_) => self.assign_stmt(),
            other => {
                let (l, c) = self.here();
                Err(LangError::parse(format!("expected statement, found `{other}`"), l, c))
            }
        }
    }

    fn do_stmt(&mut self, label: Option<String>) -> LangResult<Stmt> {
        self.eat(&TokenKind::Do)?;
        let var = self.ident()?;
        self.eat(&TokenKind::Eq)?;
        let mut ranges = vec![self.loop_range()?];
        while matches!(self.peek(), TokenKind::And) {
            self.bump();
            ranges.push(self.loop_range()?);
        }
        let mask = if matches!(self.peek(), TokenKind::Where) {
            self.bump();
            self.eat(&TokenKind::LParen)?;
            let m = self.expr()?;
            self.eat(&TokenKind::RParen)?;
            Some(m)
        } else {
            None
        };
        let body = self.block()?;
        Ok(Stmt::Do { label, var, ranges, mask, body })
    }

    fn loop_range(&mut self) -> LangResult<Range> {
        let lo = self.cmp_expr()?;
        self.eat(&TokenKind::Comma)?;
        let hi = self.cmp_expr()?;
        let step = if matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            Some(self.cmp_expr()?)
        } else {
            None
        };
        Ok(Range { lo, hi, step })
    }

    fn if_stmt(&mut self) -> LangResult<Stmt> {
        self.eat(&TokenKind::If)?;
        self.eat(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.eat(&TokenKind::RParen)?;
        let then_body = self.block()?;
        let else_body = if matches!(self.peek(), TokenKind::Else) {
            self.bump();
            if matches!(self.peek(), TokenKind::If) {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then_body, else_body })
    }

    fn call_stmt(&mut self) -> LangResult<Stmt> {
        self.eat(&TokenKind::Call)?;
        let name = self.ident()?;
        self.eat(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&TokenKind::RParen)?;
        Ok(Stmt::Call { name, args })
    }

    fn assign_stmt(&mut self) -> LangResult<Stmt> {
        let name = self.ident()?;
        let target = if matches!(self.peek(), TokenKind::LBracket) {
            self.bump();
            let mut idx = Vec::new();
            loop {
                idx.push(self.expr()?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.eat(&TokenKind::RBracket)?;
            LValue::Index(name, idx)
        } else {
            LValue::Var(name)
        };
        self.eat(&TokenKind::Eq)?;
        let value = self.expr()?;
        Ok(Stmt::Assign { target, value })
    }

    // --- expressions ---------------------------------------------------

    fn expr(&mut self) -> LangResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), TokenKind::Or) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), TokenKind::And) {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> LangResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    /// Arithmetic-only expression (used for bounds and declarations).
    fn arith(&mut self) -> LangResult<Expr> {
        self.add_expr()
    }

    fn add_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn unary(&mut self) -> LangResult<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                // Fold literal negation so `-4` is one literal (and
                // printed negative literals re-parse to equal ASTs).
                Ok(match self.unary()? {
                    Expr::IntLit(v) => Expr::IntLit(-v),
                    Expr::FloatLit(v) => Expr::FloatLit(-v),
                    e => Expr::Un(UnOp::Neg, Box::new(e)),
                })
            }
            TokenKind::Not => {
                self.bump();
                Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> LangResult<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::FloatLit(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match self.peek() {
                    TokenKind::LBracket => {
                        self.bump();
                        let mut idx = Vec::new();
                        loop {
                            idx.push(self.expr()?);
                            if matches!(self.peek(), TokenKind::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        self.eat(&TokenKind::RBracket)?;
                        Ok(Expr::Index(name, idx))
                    }
                    TokenKind::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !matches!(self.peek(), TokenKind::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if matches!(self.peek(), TokenKind::Comma) {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.eat(&TokenKind::RParen)?;
                        Ok(Expr::Call(name, args))
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => {
                let (l, c) = self.here();
                Err(LangError::parse(format!("expected expression, found `{other}`"), l, c))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_program() {
        // The paper's Figure 1 example.
        let src = r#"
program figure1
  integer n = 8
  integer mask[1..n]
  float result[1..n], q[1..n,1..n], output[1..n,1..n]

  A: do col = 1, n where (mask[col] <> 0) {
    do i = 1, n {
      result[i] = result[i] + q[i,col]
    }
    do i = 1, n {
      q[i,col] = result[i]
    }
  }
  B: do i = 1, n {
    do j = 1, n {
      output[j,i] = f(q[j,i])
    }
  }
end
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.name, "figure1");
        assert_eq!(p.decls.len(), 5);
        assert_eq!(p.body.len(), 2);
        assert_eq!(p.body[0].label(), Some("A"));
        assert_eq!(p.body[1].label(), Some("B"));
        let Stmt::Do { mask, .. } = &p.body[0] else { panic!("expected do") };
        assert!(mask.is_some());
    }

    #[test]
    fn parses_discontinuous_range() {
        let src = r#"
program p
  integer n = 8, a = 3
  float x[1..n]
  do i = 1, a - 1 and a + 1, n {
    x[i] = 0.0
  }
end
"#;
        let p = parse_program(src).unwrap();
        let Stmt::Do { ranges, .. } = &p.body[0] else { panic!() };
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0].lo, Expr::IntLit(1));
        assert_eq!(ranges[1].hi, Expr::var("n"));
    }

    #[test]
    fn and_is_logical_inside_parens() {
        let src = r#"
program p
  integer a, b, c
  if (a < 1 and b < 2) {
    c = 1
  }
end
"#;
        let p = parse_program(src).unwrap();
        let Stmt::If { cond, .. } = &p.body[0] else { panic!() };
        let Expr::Bin(BinOp::And, _, _) = cond else { panic!("expected and") };
    }

    #[test]
    fn parses_if_else_chain() {
        let src = r#"
program p
  integer a, b
  if (a = 0) {
    b = 1
  } else if (a = 1) {
    b = 2
  } else {
    b = 3
  }
end
"#;
        let p = parse_program(src).unwrap();
        let Stmt::If { else_body, .. } = &p.body[0] else { panic!() };
        assert_eq!(else_body.len(), 1);
        let Stmt::If { else_body: inner_else, .. } = &else_body[0] else { panic!() };
        assert_eq!(inner_else.len(), 1);
    }

    #[test]
    fn parses_procedures() {
        let src = r#"
program p
  integer n = 4
  float x[1..n]
  proc init(float x[1..n], integer n) {
    do i = 1, n {
      x[i] = 0.0
    }
  }
  call init(x, n)
end
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.procs.len(), 1);
        assert_eq!(p.procs[0].params.len(), 2);
        assert!(matches!(p.body[0], Stmt::Call { .. }));
    }

    #[test]
    fn operator_precedence() {
        let src = "program p\n integer a\n a = 1 + 2 * 3\nend";
        let p = parse_program(src).unwrap();
        let Stmt::Assign { value, .. } = &p.body[0] else { panic!() };
        // 1 + (2*3)
        let Expr::Bin(BinOp::Add, lhs, _) = value else { panic!() };
        assert_eq!(**lhs, Expr::IntLit(1));
    }

    #[test]
    fn parse_error_reports_position() {
        let err = parse_program("program p\n integer a\n a = = 1\nend").unwrap_err();
        match err {
            LangError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn loop_with_step() {
        let src = "program p\n integer n = 9\n integer x[1..n]\n do i = 1, n, 2 { x[i] = i }\nend";
        let p = parse_program(src).unwrap();
        let Stmt::Do { ranges, .. } = &p.body[0] else { panic!() };
        assert_eq!(ranges[0].step, Some(Expr::IntLit(2)));
    }

    #[test]
    fn missing_end_is_error() {
        assert!(parse_program("program p\n integer a\n a = 1\n").is_err());
    }

    #[test]
    fn nested_indexing_and_calls() {
        let src = "program p\n integer n = 2\n float q[1..n], z[1..n]\n z[1] = f(q[g(n)]) \nend";
        let p = parse_program(src).unwrap();
        let Stmt::Assign { value: Expr::Call(name, args), .. } = &p.body[0] else { panic!() };
        assert_eq!(name, "f");
        assert!(matches!(&args[0], Expr::Index(_, _)));
    }
}
