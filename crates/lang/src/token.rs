//! Lexical tokens of the MF language.

use std::fmt;

/// A lexical token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number of the first character.
    pub line: u32,
    /// 1-based column number of the first character.
    pub col: u32,
}

impl Token {
    /// Creates a token at the given position.
    pub fn new(kind: TokenKind, line: u32, col: u32) -> Self {
        Token { kind, line, col }
    }
}

/// The different kinds of MF tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers
    /// An integer literal such as `42`.
    Int(i64),
    /// A floating-point literal such as `3.5`.
    Float(f64),
    /// An identifier such as `mask` or `col`.
    Ident(String),

    // Keywords
    /// `program`
    Program,
    /// `end`
    End,
    /// `integer`
    Integer,
    /// `float`
    FloatKw,
    /// `do`
    Do,
    /// `where`
    Where,
    /// `if`
    If,
    /// `else`
    Else,
    /// `and` (range connector *and* boolean operator; disambiguated by the parser)
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `proc`
    Proc,
    /// `call`
    Call,
    /// `return`
    Return,

    // Punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `..`
    DotDot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Int(v) => write!(f, "{v}"),
            Float(v) => write!(f, "{v}"),
            Ident(s) => write!(f, "{s}"),
            Program => write!(f, "program"),
            End => write!(f, "end"),
            Integer => write!(f, "integer"),
            FloatKw => write!(f, "float"),
            Do => write!(f, "do"),
            Where => write!(f, "where"),
            If => write!(f, "if"),
            Else => write!(f, "else"),
            And => write!(f, "and"),
            Or => write!(f, "or"),
            Not => write!(f, "not"),
            Proc => write!(f, "proc"),
            Call => write!(f, "call"),
            Return => write!(f, "return"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBracket => write!(f, "["),
            RBracket => write!(f, "]"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            Comma => write!(f, ","),
            Colon => write!(f, ":"),
            DotDot => write!(f, ".."),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            Eq => write!(f, "="),
            Ne => write!(f, "<>"),
            Lt => write!(f, "<"),
            Le => write!(f, "<="),
            Gt => write!(f, ">"),
            Ge => write!(f, ">="),
            Eof => write!(f, "<eof>"),
        }
    }
}

/// Looks up the keyword for an identifier spelling, if any.
pub fn keyword(s: &str) -> Option<TokenKind> {
    Some(match s {
        "program" => TokenKind::Program,
        "end" => TokenKind::End,
        "integer" => TokenKind::Integer,
        "float" => TokenKind::FloatKw,
        "do" => TokenKind::Do,
        "where" => TokenKind::Where,
        "if" => TokenKind::If,
        "else" => TokenKind::Else,
        "and" => TokenKind::And,
        "or" => TokenKind::Or,
        "not" => TokenKind::Not,
        "proc" => TokenKind::Proc,
        "call" => TokenKind::Call,
        "return" => TokenKind::Return,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_hits() {
        assert_eq!(keyword("do"), Some(TokenKind::Do));
        assert_eq!(keyword("where"), Some(TokenKind::Where));
        assert_eq!(keyword("program"), Some(TokenKind::Program));
    }

    #[test]
    fn keyword_lookup_misses() {
        assert_eq!(keyword("mask"), None);
        assert_eq!(keyword("DO"), None, "keywords are case-sensitive");
    }

    #[test]
    fn display_round_trips_punctuation() {
        assert_eq!(TokenKind::DotDot.to_string(), "..");
        assert_eq!(TokenKind::Ne.to_string(), "<>");
        assert_eq!(TokenKind::Le.to_string(), "<=");
    }

    #[test]
    fn token_carries_position() {
        let t = Token::new(TokenKind::Plus, 3, 7);
        assert_eq!(t.line, 3);
        assert_eq!(t.col, 7);
    }
}
