//! Reference interpreter for MF programs.
//!
//! The interpreter is the semantic ground truth of the reproduction: the
//! test suites of `orchestra-split` and `orchestra-core` run an original
//! program and its split/pipelined transformation on identical inputs and
//! assert the final stores are equal (split must be semantics-preserving).
//!
//! Procedure calls use copy-in/copy-out parameter passing, which matches
//! by-reference semantics for the alias-free programs the analyses accept.
//!
//! The interpreter also counts executed operations ([`ExecStats`]); the
//! split heuristics and the workload generators use these counts as the
//! "profile information" the paper's compiler consumes.

use crate::ast::{BinOp, Decl, Expr, LValue, Program, Range, Stmt, Type, UnOp};
use crate::error::{LangError, LangResult};
use std::collections::BTreeMap;

/// A runtime value: a scalar or a rectangular array.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer scalar.
    Int(i64),
    /// Float scalar.
    Float(f64),
    /// Integer array with per-dimension inclusive index bounds.
    IntArray {
        /// `(lo, hi)` per dimension.
        dims: Vec<(i64, i64)>,
        /// Row-major contents.
        data: Vec<i64>,
    },
    /// Float array with per-dimension inclusive index bounds.
    FloatArray {
        /// `(lo, hi)` per dimension.
        dims: Vec<(i64, i64)>,
        /// Row-major contents.
        data: Vec<f64>,
    },
}

impl Value {
    /// Interprets the value as a float, coercing integers.
    pub fn as_float(&self) -> LangResult<f64> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v),
            _ => Err(LangError::eval("expected scalar, found array")),
        }
    }

    /// Interprets the value as an integer (floats must be integral).
    pub fn as_int(&self) -> LangResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Float(v) if v.fract() == 0.0 => Ok(*v as i64),
            Value::Float(_) => Err(LangError::eval("expected integer, found fractional float")),
            _ => Err(LangError::eval("expected scalar, found array")),
        }
    }

    /// Whether this scalar counts as true (non-zero).
    pub fn truthy(&self) -> LangResult<bool> {
        Ok(self.as_float()? != 0.0)
    }

    fn flat_index(dims: &[(i64, i64)], idx: &[i64]) -> LangResult<usize> {
        if dims.len() != idx.len() {
            return Err(LangError::eval(format!(
                "rank mismatch: {} indices for rank-{} array",
                idx.len(),
                dims.len()
            )));
        }
        let mut flat: usize = 0;
        for (k, (&i, &(lo, hi))) in idx.iter().zip(dims).enumerate() {
            if i < lo || i > hi {
                return Err(LangError::eval(format!(
                    "index {i} out of bounds [{lo}..{hi}] in dimension {k}"
                )));
            }
            let extent = (hi - lo + 1) as usize;
            flat = flat * extent + (i - lo) as usize;
        }
        Ok(flat)
    }

    /// Reads an array element.
    pub fn get(&self, idx: &[i64]) -> LangResult<Value> {
        match self {
            Value::IntArray { dims, data } => Ok(Value::Int(data[Self::flat_index(dims, idx)?])),
            Value::FloatArray { dims, data } => {
                Ok(Value::Float(data[Self::flat_index(dims, idx)?]))
            }
            _ => Err(LangError::eval("cannot index a scalar")),
        }
    }

    /// Writes an array element (coercing the scalar to the element type).
    pub fn set(&mut self, idx: &[i64], v: &Value) -> LangResult<()> {
        match self {
            Value::IntArray { dims, data } => {
                let flat = Self::flat_index(dims, idx)?;
                data[flat] = v.as_int()?;
                Ok(())
            }
            Value::FloatArray { dims, data } => {
                let flat = Self::flat_index(dims, idx)?;
                data[flat] = v.as_float()?;
                Ok(())
            }
            _ => Err(LangError::eval("cannot index a scalar")),
        }
    }
}

/// The variable store: name → value.
pub type Env = BTreeMap<String, Value>;

/// Operation counters accumulated during execution.
///
/// These play the role of the paper's profile data: the split heuristic
/// for moving `ReadLinked` computations consults per-computation cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Floating-point binary/unary operations executed.
    pub flops: u64,
    /// Integer binary/unary operations executed.
    pub int_ops: u64,
    /// Loop iterations started (after mask filtering).
    pub iterations: u64,
    /// Intrinsic function calls.
    pub calls: u64,
}

/// The MF interpreter.
#[derive(Debug, Default)]
pub struct Interp {
    /// Operation counters for the most recent run.
    pub stats: ExecStats,
    /// Iteration safety limit (guards against runaway loops in tests).
    pub max_iterations: u64,
}

impl Interp {
    /// Creates an interpreter with a generous iteration limit.
    pub fn new() -> Self {
        Interp { stats: ExecStats::default(), max_iterations: 200_000_000 }
    }

    /// Runs a program from scratch and returns the final store.
    ///
    /// `inputs` overrides initial values for declared variables (after
    /// declaration-time zero initialization), letting tests inject data.
    ///
    /// # Errors
    ///
    /// Any runtime fault (bad index, type error, unknown intrinsic)
    /// aborts execution with [`LangError::Eval`].
    pub fn run(&mut self, prog: &Program, inputs: &Env) -> LangResult<Env> {
        self.stats = ExecStats::default();
        let mut env = Env::new();
        // Declarations are processed in order, so later array bounds may
        // reference earlier (possibly input-overridden) scalars.
        for d in &prog.decls {
            let v = if d.dims.is_empty() {
                if let Some(v) = inputs.get(&d.name) {
                    coerce(v, d.ty)?
                } else if let Some(init) = &d.init {
                    let v = self.eval(init, &env, prog)?;
                    coerce(&v, d.ty)?
                } else {
                    match d.ty {
                        Type::Int => Value::Int(0),
                        Type::Float => Value::Float(0.0),
                    }
                }
            } else {
                let zeroed = self.alloc(d, &env)?;
                if let Some(v) = inputs.get(&d.name) {
                    self.check_shape(&zeroed, v, &d.name)?;
                    v.clone()
                } else {
                    zeroed
                }
            };
            env.insert(d.name.clone(), v);
        }
        for k in inputs.keys() {
            if !env.contains_key(k) {
                return Err(LangError::eval(format!("input for undeclared variable `{k}`")));
            }
        }
        for s in &prog.body {
            self.exec(s, &mut env, prog)?;
        }
        Ok(env)
    }

    fn check_shape(&self, slot: &Value, v: &Value, name: &str) -> LangResult<()> {
        let ok = match (slot, v) {
            (Value::Int(_), Value::Int(_)) | (Value::Float(_), Value::Float(_)) => true,
            (Value::Int(_), Value::Float(x)) => x.fract() == 0.0,
            (Value::Float(_), Value::Int(_)) => true,
            (Value::IntArray { dims: a, .. }, Value::IntArray { dims: b, .. }) => a == b,
            (Value::FloatArray { dims: a, .. }, Value::FloatArray { dims: b, .. }) => a == b,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(LangError::eval(format!("input for `{name}` has wrong shape or type")))
        }
    }

    fn alloc(&mut self, d: &Decl, env: &Env) -> LangResult<Value> {
        if d.dims.is_empty() {
            return Ok(match (d.ty, &d.init) {
                (Type::Int, _) => Value::Int(0),
                (Type::Float, _) => Value::Float(0.0),
            });
        }
        let mut dims = Vec::with_capacity(d.dims.len());
        let mut len: usize = 1;
        for r in &d.dims {
            let lo = self.eval_int(&r.lo, env)?;
            let hi = self.eval_int(&r.hi, env)?;
            if hi < lo {
                return Err(LangError::eval(format!(
                    "array `{}` has empty dimension [{lo}..{hi}]",
                    d.name
                )));
            }
            len = len
                .checked_mul((hi - lo + 1) as usize)
                .ok_or_else(|| LangError::eval("array too large"))?;
            dims.push((lo, hi));
        }
        Ok(match d.ty {
            Type::Int => Value::IntArray { dims, data: vec![0; len] },
            Type::Float => Value::FloatArray { dims, data: vec![0.0; len] },
        })
    }

    /// Evaluates an expression to an integer in a declaration context
    /// (no program needed because intrinsics are disallowed there).
    fn eval_int(&mut self, e: &Expr, env: &Env) -> LangResult<i64> {
        let dummy = Program::new("decl");
        self.eval(e, env, &dummy)?.as_int()
    }

    fn exec(&mut self, s: &Stmt, env: &mut Env, prog: &Program) -> LangResult<()> {
        match s {
            Stmt::Assign { target, value } => {
                let v = self.eval(value, env, prog)?;
                match target {
                    LValue::Var(name) => {
                        let slot = env
                            .get_mut(name)
                            .ok_or_else(|| LangError::eval(format!("unknown variable `{name}`")))?;
                        *slot = match slot {
                            Value::Int(_) => Value::Int(v.as_int()?),
                            Value::Float(_) => Value::Float(v.as_float()?),
                            _ => return Err(LangError::eval(format!("`{name}` is an array"))),
                        };
                    }
                    LValue::Index(name, idx_exprs) => {
                        let mut idx = Vec::with_capacity(idx_exprs.len());
                        for ie in idx_exprs {
                            idx.push(self.eval(ie, env, prog)?.as_int()?);
                        }
                        let slot = env
                            .get_mut(name)
                            .ok_or_else(|| LangError::eval(format!("unknown array `{name}`")))?;
                        // borrow juggling: take the slot out to allow v reuse
                        slot.set(&idx, &v)?;
                    }
                }
                Ok(())
            }
            Stmt::Do { var, ranges, mask, body, .. } => {
                for r in ranges {
                    let seq = self.range_values(r, env, prog)?;
                    for i in seq {
                        self.stats.iterations += 1;
                        if self.stats.iterations > self.max_iterations {
                            return Err(LangError::eval("iteration limit exceeded"));
                        }
                        env.insert(var.clone(), Value::Int(i));
                        if let Some(m) = mask {
                            if !self.eval(m, env, prog)?.truthy()? {
                                continue;
                            }
                        }
                        for b in body {
                            self.exec(b, env, prog)?;
                        }
                    }
                }
                Ok(())
            }
            Stmt::If { cond, then_body, else_body } => {
                let taken = self.eval(cond, env, prog)?.truthy()?;
                let branch = if taken { then_body } else { else_body };
                for b in branch {
                    self.exec(b, env, prog)?;
                }
                Ok(())
            }
            Stmt::Call { name, args } => self.call_proc(name, args, env, prog),
        }
    }

    fn range_values(&mut self, r: &Range, env: &Env, prog: &Program) -> LangResult<Vec<i64>> {
        let lo = self.eval(&r.lo, env, prog)?.as_int()?;
        let hi = self.eval(&r.hi, env, prog)?.as_int()?;
        let step = match &r.step {
            Some(s) => self.eval(s, env, prog)?.as_int()?,
            None => 1,
        };
        if step == 0 {
            return Err(LangError::eval("loop step of zero"));
        }
        let mut vals = Vec::new();
        let mut i = lo;
        if step > 0 {
            while i <= hi {
                vals.push(i);
                i += step;
            }
        } else {
            while i >= hi {
                vals.push(i);
                i += step;
            }
        }
        Ok(vals)
    }

    fn call_proc(
        &mut self,
        name: &str,
        args: &[Expr],
        env: &mut Env,
        prog: &Program,
    ) -> LangResult<()> {
        let def = prog
            .proc(name)
            .ok_or_else(|| LangError::eval(format!("unknown procedure `{name}`")))?
            .clone();
        if def.params.len() != args.len() {
            return Err(LangError::eval(format!(
                "`{name}` expects {} arguments, got {}",
                def.params.len(),
                args.len()
            )));
        }
        // Copy-in.
        let mut local = Env::new();
        let mut outs: Vec<(String, String)> = Vec::new(); // (param, caller var)
        for (p, a) in def.params.iter().zip(args) {
            let v = self.eval(a, env, prog)?;
            local.insert(p.name.clone(), v);
            if let Expr::Var(caller_name) = a {
                outs.push((p.name.clone(), caller_name.clone()));
            }
        }
        for d in &def.locals {
            let v = self.alloc(d, &local)?;
            local.insert(d.name.clone(), v);
            if let Some(init) = &d.init {
                let v = self.eval(init, &local, prog)?;
                local.insert(d.name.clone(), coerce(&v, d.ty)?);
            }
        }
        for s in &def.body {
            self.exec(s, &mut local, prog)?;
        }
        // Copy-out for variable arguments (by-reference emulation).
        for (param, caller) in outs {
            let v = local.remove(&param).expect("param bound");
            env.insert(caller, v);
        }
        Ok(())
    }

    /// Evaluates an expression.
    #[allow(clippy::only_used_in_recursion)] // `prog` resolves intrinsics in nested calls
    pub fn eval(&mut self, e: &Expr, env: &Env, prog: &Program) -> LangResult<Value> {
        match e {
            Expr::IntLit(v) => Ok(Value::Int(*v)),
            Expr::FloatLit(v) => Ok(Value::Float(*v)),
            Expr::Var(name) => match env.get(name) {
                Some(Value::Int(v)) => Ok(Value::Int(*v)),
                Some(Value::Float(v)) => Ok(Value::Float(*v)),
                Some(arr) => Ok(arr.clone()),
                None => Err(LangError::eval(format!("unknown variable `{name}`"))),
            },
            Expr::Index(name, idx_exprs) => {
                let mut idx = Vec::with_capacity(idx_exprs.len());
                for ie in idx_exprs {
                    idx.push(self.eval(ie, env, prog)?.as_int()?);
                }
                env.get(name)
                    .ok_or_else(|| LangError::eval(format!("unknown array `{name}`")))?
                    .get(&idx)
            }
            Expr::Bin(op, l, r) => {
                let lv = self.eval(l, env, prog)?;
                let rv = self.eval(r, env, prog)?;
                self.binop(*op, &lv, &rv)
            }
            Expr::Un(op, inner) => {
                let v = self.eval(inner, env, prog)?;
                match (op, &v) {
                    (UnOp::Neg, Value::Int(x)) => {
                        self.stats.int_ops += 1;
                        Ok(Value::Int(-x))
                    }
                    (UnOp::Neg, Value::Float(x)) => {
                        self.stats.flops += 1;
                        Ok(Value::Float(-x))
                    }
                    (UnOp::Not, _) => {
                        self.stats.int_ops += 1;
                        Ok(Value::Int(if v.truthy()? { 0 } else { 1 }))
                    }
                    _ => Err(LangError::eval("cannot negate array")),
                }
            }
            Expr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, prog)?);
                }
                self.stats.calls += 1;
                intrinsic(f, &vals)
            }
        }
    }

    fn binop(&mut self, op: BinOp, l: &Value, r: &Value) -> LangResult<Value> {
        use BinOp::*;
        // Integer arithmetic stays integral; any float operand promotes.
        let both_int = matches!((l, r), (Value::Int(_), Value::Int(_)));
        if both_int {
            let (a, b) = (l.as_int()?, r.as_int()?);
            self.stats.int_ops += 1;
            let v = match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                Mul => a.wrapping_mul(b),
                Div => {
                    if b == 0 {
                        return Err(LangError::eval("integer division by zero"));
                    }
                    a / b
                }
                Mod => {
                    if b == 0 {
                        return Err(LangError::eval("integer modulo by zero"));
                    }
                    a % b
                }
                Eq => (a == b) as i64,
                Ne => (a != b) as i64,
                Lt => (a < b) as i64,
                Le => (a <= b) as i64,
                Gt => (a > b) as i64,
                Ge => (a >= b) as i64,
                And => ((a != 0) && (b != 0)) as i64,
                Or => ((a != 0) || (b != 0)) as i64,
            };
            Ok(Value::Int(v))
        } else {
            let (a, b) = (l.as_float()?, r.as_float()?);
            self.stats.flops += 1;
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Mod => a % b,
                Eq => return Ok(Value::Int((a == b) as i64)),
                Ne => return Ok(Value::Int((a != b) as i64)),
                Lt => return Ok(Value::Int((a < b) as i64)),
                Le => return Ok(Value::Int((a <= b) as i64)),
                Gt => return Ok(Value::Int((a > b) as i64)),
                Ge => return Ok(Value::Int((a >= b) as i64)),
                And => return Ok(Value::Int(((a != 0.0) && (b != 0.0)) as i64)),
                Or => return Ok(Value::Int(((a != 0.0) || (b != 0.0)) as i64)),
            };
            Ok(Value::Float(v))
        }
    }
}

fn coerce(v: &Value, ty: Type) -> LangResult<Value> {
    Ok(match ty {
        Type::Int => Value::Int(v.as_int()?),
        Type::Float => Value::Float(v.as_float()?),
    })
}

/// Evaluates a pure intrinsic function.
///
/// `f`, `g`, and `h` are the paper examples' anonymous "compute"
/// functions; they are fixed nontrivial pure maps so that transformed
/// programs can be checked for exact output equality.
fn intrinsic(name: &str, args: &[Value]) -> LangResult<Value> {
    let arity_err = || LangError::eval(format!("wrong number of arguments for intrinsic `{name}`"));
    let one = |args: &[Value]| -> LangResult<f64> {
        if args.len() != 1 {
            Err(arity_err())
        } else {
            args[0].as_float()
        }
    };
    match name {
        "f" => {
            let x = one(args)?;
            Ok(Value::Float(x * 0.5 + 1.0))
        }
        "g" => {
            let x = one(args)?;
            Ok(Value::Float(x * x - x))
        }
        "h" => {
            let x = one(args)?;
            Ok(Value::Float(2.0 * x + 3.0))
        }
        "sqrt" => Ok(Value::Float(one(args)?.max(0.0).sqrt())),
        "sin" => Ok(Value::Float(one(args)?.sin())),
        "cos" => Ok(Value::Float(one(args)?.cos())),
        "exp" => Ok(Value::Float(one(args)?.exp())),
        "abs" => match args {
            [Value::Int(v)] => Ok(Value::Int(v.abs())),
            [v] => Ok(Value::Float(v.as_float()?.abs())),
            _ => Err(arity_err()),
        },
        "min" => match args {
            [a, b] => match (a, b) {
                (Value::Int(x), Value::Int(y)) => Ok(Value::Int(*x.min(y))),
                _ => Ok(Value::Float(a.as_float()?.min(b.as_float()?))),
            },
            _ => Err(arity_err()),
        },
        "max" => match args {
            [a, b] => match (a, b) {
                (Value::Int(x), Value::Int(y)) => Ok(Value::Int(*x.max(y))),
                _ => Ok(Value::Float(a.as_float()?.max(b.as_float()?))),
            },
            _ => Err(arity_err()),
        },
        _ => Err(LangError::eval(format!("unknown intrinsic `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn run(src: &str) -> Env {
        let prog = parse_program(src).unwrap();
        Interp::new().run(&prog, &Env::new()).unwrap()
    }

    #[test]
    fn scalar_initializers() {
        let env = run("program p\n integer n = 5\n float x = 2.5\nend");
        assert_eq!(env["n"], Value::Int(5));
        assert_eq!(env["x"], Value::Float(2.5));
    }

    #[test]
    fn array_fill_loop() {
        let env = run(
            "program p\n integer n = 4\n integer x[1..n]\n do i = 1, n {\n x[i] = i * i\n }\nend",
        );
        let Value::IntArray { data, .. } = &env["x"] else { panic!() };
        assert_eq!(data, &vec![1, 4, 9, 16]);
    }

    #[test]
    fn masked_loop_skips() {
        let env = run(
            "program p\n integer n = 4\n integer m[1..n], x[1..n]\n do i = 1, n { m[i] = i % 2 }\n do i = 1, n where (m[i] <> 0) { x[i] = 7 }\nend",
        );
        let Value::IntArray { data, .. } = &env["x"] else { panic!() };
        assert_eq!(data, &vec![7, 0, 7, 0]);
    }

    #[test]
    fn discontinuous_range_executes_both_parts() {
        let env = run(
            "program p\n integer n = 5, a = 3\n integer x[1..n]\n do i = 1, a - 1 and a + 1, n { x[i] = 1 }\nend",
        );
        let Value::IntArray { data, .. } = &env["x"] else { panic!() };
        assert_eq!(data, &vec![1, 1, 0, 1, 1]);
    }

    #[test]
    fn two_dimensional_indexing() {
        let env = run(
            "program p\n integer n = 3\n integer a[1..n, 1..n]\n do i = 1, n { do j = 1, n { a[i, j] = i * 10 + j } }\nend",
        );
        let Value::IntArray { dims, data } = &env["a"] else { panic!() };
        assert_eq!(dims, &vec![(1, 3), (1, 3)]);
        assert_eq!(data[0], 11);
        assert_eq!(data[8], 33);
        assert_eq!(data[5], 23, "row-major order: a[2,3]");
    }

    #[test]
    fn reduction() {
        let env = run("program p\n integer n = 4\n integer s\n do i = 1, n { s = s + i }\nend");
        assert_eq!(env["s"], Value::Int(10));
    }

    #[test]
    fn if_else_branches() {
        let env = run("program p\n integer a = 2, b\n if (a = 2) { b = 10 } else { b = 20 }\nend");
        assert_eq!(env["b"], Value::Int(10));
    }

    #[test]
    fn intrinsic_f_definition() {
        let env = run("program p\n float y\n y = f(4.0)\nend");
        assert_eq!(env["y"], Value::Float(3.0));
    }

    #[test]
    fn procedure_copy_out() {
        let env = run(
            "program p\n integer n = 3\n float x[1..n]\n proc fill(float x[1..n], integer n) {\n do i = 1, n { x[i] = 1.5 }\n }\n call fill(x, n)\nend",
        );
        let Value::FloatArray { data, .. } = &env["x"] else { panic!() };
        assert_eq!(data, &vec![1.5, 1.5, 1.5]);
    }

    #[test]
    fn out_of_bounds_is_error() {
        let prog =
            parse_program("program p\n integer n = 2\n integer x[1..n]\n x[3] = 1\nend").unwrap();
        let err = Interp::new().run(&prog, &Env::new()).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn division_by_zero_is_error() {
        let prog = parse_program("program p\n integer a\n a = 1 / 0\nend").unwrap();
        assert!(Interp::new().run(&prog, &Env::new()).is_err());
    }

    #[test]
    fn inputs_override_arrays() {
        let prog = parse_program(
            "program p\n integer n = 3\n integer m[1..n], c\n do i = 1, n where (m[i] <> 0) { c = c + 1 }\nend",
        )
        .unwrap();
        let mut inputs = Env::new();
        inputs.insert("m".into(), Value::IntArray { dims: vec![(1, 3)], data: vec![1, 0, 1] });
        let env = Interp::new().run(&prog, &inputs).unwrap();
        assert_eq!(env["c"], Value::Int(2));
    }

    #[test]
    fn input_shape_mismatch_is_error() {
        let prog = parse_program("program p\n integer n = 3\n integer m[1..n]\nend").unwrap();
        let mut inputs = Env::new();
        inputs.insert("m".into(), Value::IntArray { dims: vec![(1, 2)], data: vec![1, 0] });
        assert!(Interp::new().run(&prog, &inputs).is_err());
    }

    #[test]
    fn stats_count_flops() {
        let prog = parse_program(
            "program p\n integer n = 10\n float x[1..n]\n do i = 1, n { x[i] = x[i] + 1.0 }\nend",
        )
        .unwrap();
        let mut it = Interp::new();
        it.run(&prog, &Env::new()).unwrap();
        assert_eq!(it.stats.flops, 10);
        assert_eq!(it.stats.iterations, 10);
    }

    #[test]
    fn negative_step_loops_downward() {
        let env = run(
            "program p\n integer n = 3, k\n integer x[1..n]\n do i = n, 1, -1 { k = k + 1\n x[i] = k }\nend",
        );
        let Value::IntArray { data, .. } = &env["x"] else { panic!() };
        assert_eq!(data, &vec![3, 2, 1]);
    }

    #[test]
    fn downstream_decl_sees_earlier_scalar() {
        let env = run("program p\n integer n = 4\n integer x[1..n]\nend");
        let Value::IntArray { dims, .. } = &env["x"] else { panic!() };
        assert_eq!(dims, &vec![(1, 4)]);
    }
}
