//! Pretty-printer for MF programs.
//!
//! The output of [`pretty_print`] parses back to an equal AST
//! (round-trip property, tested in the crate's proptest suite), which the
//! split transformation relies on when emitting transformed source.

use crate::ast::{BinOp, Decl, Expr, LValue, ProcDef, Program, Range, Stmt, UnOp};
use std::fmt::Write;

/// Renders a program as MF source text.
pub fn pretty_print(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", p.name);
    for d in &p.decls {
        let _ = writeln!(out, "  {}", decl_to_string(d));
    }
    for proc in &p.procs {
        print_proc(&mut out, proc);
    }
    for s in &p.body {
        print_stmt(&mut out, s, 1);
    }
    out.push_str("end\n");
    out
}

/// Renders a single declaration, e.g. `float q[1..n, 1..n]`.
pub fn decl_to_string(d: &Decl) -> String {
    let mut s = format!("{} {}", d.ty, d.name);
    if !d.dims.is_empty() {
        s.push('[');
        for (i, r) in d.dims.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}..{}", expr_to_string(&r.lo), expr_to_string(&r.hi));
        }
        s.push(']');
    }
    if let Some(init) = &d.init {
        let _ = write!(s, " = {}", expr_to_string(init));
    }
    s
}

fn print_proc(out: &mut String, p: &ProcDef) {
    let params: Vec<String> = p.params.iter().map(decl_to_string).collect();
    let _ = writeln!(out, "  proc {}({}) {{", p.name, params.join(", "));
    for d in &p.locals {
        let _ = writeln!(out, "    {}", decl_to_string(d));
    }
    for s in &p.body {
        print_stmt(out, s, 2);
    }
    out.push_str("  }\n");
}

/// Renders a statement (and its children) at the given indent level.
pub fn stmt_to_string(s: &Stmt) -> String {
    let mut out = String::new();
    print_stmt(&mut out, s, 0);
    out
}

fn print_stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Assign { target, value } => {
            let t = match target {
                LValue::Var(v) => v.clone(),
                LValue::Index(a, idx) => {
                    let parts: Vec<String> = idx.iter().map(expr_to_string).collect();
                    format!("{a}[{}]", parts.join(", "))
                }
            };
            let _ = writeln!(out, "{pad}{t} = {}", expr_to_string(value));
        }
        Stmt::Do { label, var, ranges, mask, body } => {
            let mut head = String::new();
            if let Some(l) = label {
                let _ = write!(head, "{l}: ");
            }
            let _ = write!(head, "do {var} = ");
            for (i, r) in ranges.iter().enumerate() {
                if i > 0 {
                    head.push_str(" and ");
                }
                let _ = write!(head, "{}, {}", expr_to_string(&r.lo), expr_to_string(&r.hi));
                if let Some(st) = &r.step {
                    let _ = write!(head, ", {}", expr_to_string(st));
                }
            }
            if let Some(m) = mask {
                let _ = write!(head, " where ({})", expr_to_string(m));
            }
            let _ = writeln!(out, "{pad}{head} {{");
            for b in body {
                print_stmt(out, b, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::If { cond, then_body, else_body } => {
            let _ = writeln!(out, "{pad}if ({}) {{", expr_to_string(cond));
            for b in then_body {
                print_stmt(out, b, indent + 1);
            }
            if else_body.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for b in else_body {
                    print_stmt(out, b, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::Call { name, args } => {
            let parts: Vec<String> = args.iter().map(expr_to_string).collect();
            let _ = writeln!(out, "{pad}call {name}({})", parts.join(", "));
        }
    }
}

/// Renders an expression with minimal necessary parentheses.
pub fn expr_to_string(e: &Expr) -> String {
    expr_prec(e, 0)
}

/// Precedence levels: or=1, and=2, cmp=3, add=4, mul=5, unary=6.
fn prec_of(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
    }
}

fn expr_prec(e: &Expr, min: u8) -> String {
    match e {
        Expr::IntLit(v) => v.to_string(),
        Expr::FloatLit(v) => {
            // Always keep a decimal point so the literal re-lexes as a float.
            let s = v.to_string();
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Var(v) => v.clone(),
        Expr::Index(a, idx) => {
            let parts: Vec<String> = idx.iter().map(|e| expr_prec(e, 0)).collect();
            format!("{a}[{}]", parts.join(", "))
        }
        Expr::Bin(op, l, r) => {
            let p = prec_of(*op);
            // Left-associative: left child may print at p, right child needs p+1.
            let s = format!("{} {} {}", expr_prec(l, p), op, expr_prec(r, p + 1));
            if p < min {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Un(op, inner) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "not ",
            };
            let s = format!("{sym}{}", expr_prec(inner, 6));
            if min > 6 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Call(f, args) => {
            let parts: Vec<String> = args.iter().map(|e| expr_prec(e, 0)).collect();
            format!("{f}({})", parts.join(", "))
        }
    }
}

#[allow(dead_code)]
fn range_to_string(r: &Range) -> String {
    format!("{}..{}", expr_to_string(&r.lo), expr_to_string(&r.hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn round_trips_figure1() {
        let src = r#"
program figure1
  integer n = 8
  integer mask[1..n]
  float result[1..n], q[1..n, 1..n], output[1..n, 1..n]
  A: do col = 1, n where (mask[col] <> 0) {
    do i = 1, n {
      result[i] = result[i] + q[i, col]
    }
    do i = 1, n {
      q[i, col] = result[i]
    }
  }
  B: do i = 1, n {
    do j = 1, n {
      output[j, i] = f(q[j, i])
    }
  }
end
"#;
        let p1 = parse_program(src).unwrap();
        let printed = pretty_print(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "pretty output must re-parse to the same AST:\n{printed}");
    }

    #[test]
    fn parenthesizes_by_precedence() {
        // (1 + 2) * 3 must keep its parens.
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::IntLit(1), Expr::IntLit(2)),
            Expr::IntLit(3),
        );
        assert_eq!(expr_to_string(&e), "(1 + 2) * 3");
        // 1 + 2 * 3 stays unparenthesized.
        let e = Expr::bin(
            BinOp::Add,
            Expr::IntLit(1),
            Expr::bin(BinOp::Mul, Expr::IntLit(2), Expr::IntLit(3)),
        );
        assert_eq!(expr_to_string(&e), "1 + 2 * 3");
    }

    #[test]
    fn subtraction_right_operand_parenthesized() {
        // 1 - (2 - 3) must keep parens because `-` is left-associative.
        let e = Expr::bin(
            BinOp::Sub,
            Expr::IntLit(1),
            Expr::bin(BinOp::Sub, Expr::IntLit(2), Expr::IntLit(3)),
        );
        assert_eq!(expr_to_string(&e), "1 - (2 - 3)");
    }

    #[test]
    fn float_literals_keep_decimal_point() {
        assert_eq!(expr_to_string(&Expr::FloatLit(2.0)), "2.0");
        assert_eq!(expr_to_string(&Expr::FloatLit(0.5)), "0.5");
    }

    #[test]
    fn discontinuous_range_round_trip() {
        let src = "program p\n  integer n = 9, a = 4\n  float x[1..n]\n  do i = 1, a - 1 and a + 1, n {\n    x[i] = 1.0\n  }\nend\n";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&pretty_print(&p1)).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn if_else_round_trip() {
        let src = "program p\n  integer a, b\n  if (a = 0) {\n    b = 1\n  } else {\n    b = 2\n  }\nend\n";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&pretty_print(&p1)).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn proc_round_trip() {
        let src = "program p\n  integer n = 2\n  float x[1..n]\n  proc zero(float x[1..n], integer n) {\n    do i = 1, n {\n      x[i] = 0.0\n    }\n  }\n  call zero(x, n)\nend\n";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&pretty_print(&p1)).unwrap();
        assert_eq!(p1, p2);
    }
}
