//! The MF lexer.
//!
//! Converts source text into a vector of [`Token`]s. Comments run from
//! `#` to end of line. Numbers with a decimal point are float literals.

use crate::error::{LangError, LangResult};
use crate::token::{keyword, Token, TokenKind};

/// Tokenizes an entire source string.
///
/// # Errors
///
/// Returns [`LangError::Lex`] on any character that cannot begin a token
/// or on a malformed numeric literal.
pub fn tokenize(src: &str) -> LangResult<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().collect(), pos: 0, line: 1, col: 1, src }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> LangResult<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token::new(TokenKind::Eof, line, col));
                return Ok(out);
            };
            let kind = if c.is_ascii_digit() {
                self.number(line, col)?
            } else if c.is_ascii_alphabetic() || c == '_' {
                self.ident()
            } else {
                self.punct(line, col)?
            };
            out.push(Token::new(kind, line, col));
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) -> LangResult<TokenKind> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        // A '.' starts a float only if followed by a digit; `1..n` must
        // lex as Int(1), DotDot, Ident(n).
        let mut is_float = false;
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e') | Some('E'))
            && (self.peek2().is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek2(), Some('+') | Some('-'))
                    && self.chars.get(self.pos + 2).is_some_and(|c| c.is_ascii_digit())))
        {
            is_float = true;
            self.bump(); // e
            if matches!(self.peek(), Some('+') | Some('-')) {
                self.bump();
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| LangError::lex(format!("bad float literal `{text}`"), line, col))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| LangError::lex(format!("bad integer literal `{text}`"), line, col))
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        keyword(&text).unwrap_or(TokenKind::Ident(text))
    }

    fn punct(&mut self, line: u32, col: u32) -> LangResult<TokenKind> {
        let c = self.bump().expect("punct called at eof");
        Ok(match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            ',' => TokenKind::Comma,
            ':' => TokenKind::Colon,
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '=' => TokenKind::Eq,
            '.' => {
                if self.peek() == Some('.') {
                    self.bump();
                    TokenKind::DotDot
                } else {
                    return Err(LangError::lex("stray `.`", line, col));
                }
            }
            '<' => match self.peek() {
                Some('>') => {
                    self.bump();
                    TokenKind::Ne
                }
                Some('=') => {
                    self.bump();
                    TokenKind::Le
                }
                _ => TokenKind::Lt,
            },
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            other => {
                let _ = self.src;
                return Err(LangError::lex(format!("unexpected character `{other}`"), line, col));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_do_header() {
        assert_eq!(
            kinds("do col = 1, n"),
            vec![Do, Ident("col".into()), Eq, Int(1), Comma, Ident("n".into()), Eof]
        );
    }

    #[test]
    fn dotdot_vs_float() {
        assert_eq!(kinds("1..n"), vec![Int(1), DotDot, Ident("n".into()), Eof]);
        assert_eq!(kinds("1.5"), vec![Float(1.5), Eof]);
        assert_eq!(kinds("2.0e3"), vec![Float(2000.0), Eof]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(kinds("<> <= >= < > ="), vec![Ne, Le, Ge, Lt, Gt, Eq, Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("x # a comment\ny"), vec![Ident("x".into()), Ident("y".into()), Eof]);
    }

    #[test]
    fn where_mask_tokens() {
        assert_eq!(
            kinds("where (mask[col] <> 0)"),
            vec![
                Where,
                LParen,
                Ident("mask".into()),
                LBracket,
                Ident("col".into()),
                RBracket,
                Ne,
                Int(0),
                RParen,
                Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn stray_dot_is_error() {
        assert!(tokenize("a . b").is_err());
    }

    #[test]
    fn unexpected_char_is_error() {
        let e = tokenize("a $ b").unwrap_err();
        assert!(e.to_string().contains("unexpected character"));
    }

    #[test]
    fn negative_numbers_lex_as_minus_then_literal() {
        assert_eq!(kinds("-3"), vec![Minus, Int(3), Eof]);
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("do done and android"),
            vec![Do, Ident("done".into()), And, Ident("android".into()), Eof]
        );
    }
}
