//! Abstract syntax of the MF language.
//!
//! The AST mirrors the loop-nest-level subset of FORTRAN the paper's
//! examples use, plus the two extensions the paper introduces in its
//! notation: masked loops (`do i = lo, hi where (e)`) and discontinuous
//! ranges (`do i = 1, a-1 and a+1, n`).

use std::collections::BTreeSet;
use std::fmt;

/// Scalar element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "integer"),
            Type::Float => write!(f, "float"),
        }
    }
}

/// A complete MF program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The program name from the `program` header.
    pub name: String,
    /// Variable declarations (scalars and arrays).
    pub decls: Vec<Decl>,
    /// Procedure definitions.
    pub procs: Vec<ProcDef>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Program { name: name.into(), decls: Vec::new(), procs: Vec::new(), body: Vec::new() }
    }

    /// Looks up a declaration by variable name.
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.name == name)
    }

    /// Looks up a procedure definition by name.
    pub fn proc(&self, name: &str) -> Option<&ProcDef> {
        self.procs.iter().find(|p| p.name == name)
    }
}

/// A variable declaration. `dims` is empty for scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Declared index range per dimension; empty for a scalar.
    pub dims: Vec<Range>,
    /// Optional scalar initializer (evaluated at program start).
    pub init: Option<Expr>,
}

impl Decl {
    /// Creates a scalar declaration without initializer.
    pub fn scalar(name: impl Into<String>, ty: Type) -> Self {
        Decl { name: name.into(), ty, dims: Vec::new(), init: None }
    }

    /// Creates a scalar declaration with an initializer.
    pub fn scalar_init(name: impl Into<String>, ty: Type, init: Expr) -> Self {
        Decl { name: name.into(), ty, dims: Vec::new(), init: Some(init) }
    }

    /// Creates an array declaration.
    pub fn array(name: impl Into<String>, ty: Type, dims: Vec<Range>) -> Self {
        Decl { name: name.into(), ty, dims, init: None }
    }

    /// Returns true if this declares an array.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }
}

/// A procedure definition. Procedures are call-by-reference, like
/// FORTRAN subroutines.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcDef {
    /// Procedure name.
    pub name: String,
    /// Formal parameters (declarations without initializers).
    pub params: Vec<Decl>,
    /// Local declarations.
    pub locals: Vec<Decl>,
    /// Procedure body.
    pub body: Vec<Stmt>,
}

/// An index range `lo .. hi` with an optional skip (stride), default 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    /// First value (inclusive).
    pub lo: Expr,
    /// Last value (inclusive).
    pub hi: Expr,
    /// Stride; `None` means 1.
    pub step: Option<Expr>,
}

impl Range {
    /// A unit-stride range.
    pub fn new(lo: Expr, hi: Expr) -> Self {
        Range { lo, hi, step: None }
    }

    /// A constant unit-stride range.
    pub fn constant(lo: i64, hi: i64) -> Self {
        Range::new(Expr::IntLit(lo), Expr::IntLit(hi))
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=` (comparison in expression position)
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// Whether this operator yields a boolean (0/1) result.
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Whether this is a logical connective.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// The comparison with swapped operands (`a < b` ⇔ `b > a`), if any.
    pub fn swap(&self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::Eq,
            BinOp::Ne => BinOp::Ne,
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            _ => return None,
        })
    }

    /// The logical negation of a comparison (`<` ⇔ `>=`), if any.
    pub fn negate(&self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Scalar variable reference.
    Var(String),
    /// Array element reference `a[i, j]`.
    Index(String, Vec<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Call to a pure intrinsic function.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    /// Shorthand for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Shorthand for an array index expression.
    pub fn index(name: impl Into<String>, idx: Vec<Expr>) -> Self {
        Expr::Index(name.into(), idx)
    }

    /// Collects the names of all scalar variables read by this expression
    /// (array index variables included; array names excluded).
    pub fn scalar_reads(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::IntLit(_) | Expr::FloatLit(_) => {}
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Index(_, idx) => {
                for e in idx {
                    e.scalar_reads(out);
                }
            }
            Expr::Bin(_, a, b) => {
                a.scalar_reads(out);
                b.scalar_reads(out);
            }
            Expr::Un(_, a) => a.scalar_reads(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.scalar_reads(out);
                }
            }
        }
    }

    /// Collects the names of all arrays referenced by this expression.
    pub fn array_reads(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) => {}
            Expr::Index(name, idx) => {
                out.insert(name.clone());
                for e in idx {
                    e.array_reads(out);
                }
            }
            Expr::Bin(_, a, b) => {
                a.array_reads(out);
                b.array_reads(out);
            }
            Expr::Un(_, a) => a.array_reads(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.array_reads(out);
                }
            }
        }
    }

    /// Substitutes every occurrence of scalar variable `name` with `repl`.
    pub fn subst(&self, name: &str, repl: &Expr) -> Expr {
        match self {
            Expr::IntLit(_) | Expr::FloatLit(_) => self.clone(),
            Expr::Var(v) => {
                if v == name {
                    repl.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Index(a, idx) => {
                Expr::Index(a.clone(), idx.iter().map(|e| e.subst(name, repl)).collect())
            }
            Expr::Bin(op, l, r) => Expr::bin(*op, l.subst(name, repl), r.subst(name, repl)),
            Expr::Un(op, e) => Expr::Un(*op, Box::new(e.subst(name, repl))),
            Expr::Call(f, args) => {
                Expr::Call(f.clone(), args.iter().map(|e| e.subst(name, repl)).collect())
            }
        }
    }

    /// Returns the constant integer value of this expression if it is a
    /// literal (possibly negated).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::IntLit(v) => Some(*v),
            Expr::Un(UnOp::Neg, e) => e.as_int().map(|v| -v),
            _ => None,
        }
    }
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element.
    Index(String, Vec<Expr>),
}

impl LValue {
    /// The name of the variable or array being written.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(n) => n,
            LValue::Index(n, _) => n,
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target = value`
    Assign {
        /// The location written.
        target: LValue,
        /// The value expression.
        value: Expr,
    },
    /// A `do` loop, possibly masked, possibly over a discontinuous range.
    Do {
        /// Optional label (used by split to name generated pieces).
        label: Option<String>,
        /// Induction variable name.
        var: String,
        /// One or more ranges, iterated in order (`do i = r1 and r2`).
        ranges: Vec<Range>,
        /// Optional `where` mask; iterations with a false mask are skipped.
        mask: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if (cond) { ... } else { ... }`
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when `cond` is non-zero.
        then_body: Vec<Stmt>,
        /// Taken when `cond` is zero. May be empty.
        else_body: Vec<Stmt>,
    },
    /// `call p(args)` — procedure invocation (by-reference).
    Call {
        /// Procedure name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
}

impl Stmt {
    /// Creates a simple (unlabeled, unmasked, single-range) `do` loop.
    pub fn simple_do(var: impl Into<String>, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Self {
        Stmt::Do {
            label: None,
            var: var.into(),
            ranges: vec![Range::new(lo, hi)],
            mask: None,
            body,
        }
    }

    /// Creates an assignment statement.
    pub fn assign(target: LValue, value: Expr) -> Self {
        Stmt::Assign { target, value }
    }

    /// The label of this statement, if it is a labeled loop.
    pub fn label(&self) -> Option<&str> {
        match self {
            Stmt::Do { label, .. } => label.as_deref(),
            _ => None,
        }
    }

    /// Collects scalar variables written by this statement (transitively).
    pub fn scalar_writes(&self, out: &mut BTreeSet<String>) {
        match self {
            Stmt::Assign { target: LValue::Var(v), .. } => {
                out.insert(v.clone());
            }
            Stmt::Assign { .. } => {}
            Stmt::Do { var, body, .. } => {
                out.insert(var.clone());
                for s in body {
                    s.scalar_writes(out);
                }
            }
            Stmt::If { then_body, else_body, .. } => {
                for s in then_body.iter().chain(else_body) {
                    s.scalar_writes(out);
                }
            }
            Stmt::Call { .. } => {}
        }
    }

    /// Collects array names written by this statement (transitively;
    /// calls are treated as writing every array argument, conservatively).
    pub fn array_writes(&self, out: &mut BTreeSet<String>) {
        match self {
            Stmt::Assign { target: LValue::Index(a, _), .. } => {
                out.insert(a.clone());
            }
            Stmt::Assign { .. } => {}
            Stmt::Do { body, .. } => {
                for s in body {
                    s.array_writes(out);
                }
            }
            Stmt::If { then_body, else_body, .. } => {
                for s in then_body.iter().chain(else_body) {
                    s.array_writes(out);
                }
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    if let Expr::Var(name) = a {
                        out.insert(name.clone());
                    }
                }
            }
        }
    }

    /// Visits every expression in this statement, outermost first.
    pub fn visit_exprs<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        match self {
            Stmt::Assign { target, value } => {
                if let LValue::Index(_, idx) = target {
                    for e in idx {
                        f(e);
                    }
                }
                f(value);
            }
            Stmt::Do { ranges, mask, body, .. } => {
                for r in ranges {
                    f(&r.lo);
                    f(&r.hi);
                    if let Some(s) = &r.step {
                        f(s);
                    }
                }
                if let Some(m) = mask {
                    f(m);
                }
                for s in body {
                    s.visit_exprs(f);
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                f(cond);
                for s in then_body.iter().chain(else_body) {
                    s.visit_exprs(f);
                }
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_loop() -> Stmt {
        // do i = 1, n { q[i, col] = result[i] }
        Stmt::simple_do(
            "i",
            Expr::IntLit(1),
            Expr::var("n"),
            vec![Stmt::assign(
                LValue::Index("q".into(), vec![Expr::var("i"), Expr::var("col")]),
                Expr::index("result", vec![Expr::var("i")]),
            )],
        )
    }

    #[test]
    fn scalar_reads_collects_index_vars() {
        let e = Expr::index("q", vec![Expr::var("i"), Expr::var("col")]);
        let mut s = BTreeSet::new();
        e.scalar_reads(&mut s);
        assert!(s.contains("i") && s.contains("col"));
        assert!(!s.contains("q"), "array names are not scalar reads");
    }

    #[test]
    fn array_reads_collects_names() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::index("q", vec![Expr::var("i")]),
            Expr::index("x", vec![Expr::IntLit(3)]),
        );
        let mut s = BTreeSet::new();
        e.array_reads(&mut s);
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec!["q", "x"]);
    }

    #[test]
    fn stmt_array_writes() {
        let mut s = BTreeSet::new();
        sample_loop().array_writes(&mut s);
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec!["q"]);
    }

    #[test]
    fn stmt_scalar_writes_include_induction_var() {
        let mut s = BTreeSet::new();
        sample_loop().scalar_writes(&mut s);
        assert!(s.contains("i"));
    }

    #[test]
    fn subst_replaces_only_target() {
        let e = Expr::bin(BinOp::Add, Expr::var("i"), Expr::var("j"));
        let r = e.subst("i", &Expr::IntLit(5));
        assert_eq!(r, Expr::bin(BinOp::Add, Expr::IntLit(5), Expr::var("j")));
    }

    #[test]
    fn subst_reaches_into_indices() {
        let e = Expr::index("q", vec![Expr::var("i")]);
        let r = e.subst("i", &Expr::bin(BinOp::Sub, Expr::var("i"), Expr::IntLit(1)));
        assert_eq!(
            r,
            Expr::index("q", vec![Expr::bin(BinOp::Sub, Expr::var("i"), Expr::IntLit(1))])
        );
    }

    #[test]
    fn negate_comparison() {
        assert_eq!(BinOp::Lt.negate(), Some(BinOp::Ge));
        assert_eq!(BinOp::Eq.negate(), Some(BinOp::Ne));
        assert_eq!(BinOp::Add.negate(), None);
    }

    #[test]
    fn as_int_handles_negation() {
        let e = Expr::Un(UnOp::Neg, Box::new(Expr::IntLit(7)));
        assert_eq!(e.as_int(), Some(-7));
    }

    #[test]
    fn program_lookup() {
        let mut p = Program::new("t");
        p.decls.push(Decl::scalar("n", Type::Int));
        assert!(p.decl("n").is_some());
        assert!(p.decl("m").is_none());
    }

    #[test]
    fn visit_exprs_sees_mask_and_bounds() {
        let s = Stmt::Do {
            label: None,
            var: "i".into(),
            ranges: vec![Range::new(Expr::IntLit(1), Expr::var("n"))],
            mask: Some(Expr::bin(
                BinOp::Ne,
                Expr::index("mask", vec![Expr::var("i")]),
                Expr::IntLit(0),
            )),
            body: vec![],
        };
        let mut count = 0;
        s.visit_exprs(&mut |_| count += 1);
        assert_eq!(count, 3, "lo, hi, mask");
    }
}
