#![warn(missing_docs)]
//! # orchestra-lang
//!
//! The **MF** ("Mini-Fortran") source language for the PLDI '93
//! *Orchestrating Interactions Among Parallel Computations* reproduction.
//!
//! The paper's compiler consumes extended FORTRAN; this crate provides a
//! from-scratch equivalent able to express every construct the paper's
//! analyses and examples (Figures 1–5) rely on:
//!
//! * multi-dimensional arrays with declared index ranges,
//! * `do` loops with *discontinuous ranges* (`do i = 1, a-1 and a+1, n`),
//! * `where` masks on loops (`do col = 1, n where (mask[col] <> 0)`),
//! * conditionals, reductions, and calls to pure intrinsic functions.
//!
//! The crate contains a lexer, a recursive-descent parser, a
//! pretty-printer, a reference interpreter (used by the test suite to
//! prove that the `split` transformation is semantics-preserving), and a
//! programmatic [`builder`] API used by later passes to synthesize code.
//!
//! ## Example
//!
//! ```
//! use orchestra_lang::parse_program;
//!
//! let src = r#"
//! program demo
//!   integer n = 4
//!   float x[1..n]
//!   do i = 1, n {
//!     x[i] = i * 2.0
//!   }
//! end
//! "#;
//! let prog = parse_program(src).unwrap();
//! assert_eq!(prog.name, "demo");
//! ```

pub mod ast;
pub mod builder;
pub mod check;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{BinOp, Decl, Expr, LValue, Program, Range, Stmt, Type, UnOp};
pub use check::{check_program, CheckError};
pub use error::{LangError, LangResult};
pub use interp::{Env, Interp, Value};
pub use parser::parse_program;
pub use pretty::pretty_print;
