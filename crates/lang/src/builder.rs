//! Programmatic construction of MF ASTs.
//!
//! The split transformation and the workload generators synthesize code;
//! this module gives them a compact, readable vocabulary, e.g.:
//!
//! ```
//! use orchestra_lang::builder::*;
//!
//! // do i = 1, n { x[i] = x[i] + y[i] }
//! let body = vec![set_elem("x", vec![v("i")], add(elem("x", vec![v("i")]), elem("y", vec![v("i")])))];
//! let loop_ = do_loop("i", int(1), v("n"), body);
//! ```

use crate::ast::{BinOp, Decl, Expr, LValue, Program, Range, Stmt, Type, UnOp};

/// Integer literal.
pub fn int(v: i64) -> Expr {
    Expr::IntLit(v)
}

/// Float literal.
pub fn float(v: f64) -> Expr {
    Expr::FloatLit(v)
}

/// Scalar variable reference.
pub fn v(name: &str) -> Expr {
    Expr::Var(name.to_string())
}

/// Array element reference.
pub fn elem(name: &str, idx: Vec<Expr>) -> Expr {
    Expr::Index(name.to_string(), idx)
}

/// Intrinsic call.
pub fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call(name.to_string(), args)
}

/// `a + b`
pub fn add(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Add, a, b)
}

/// `a - b`
pub fn sub(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Sub, a, b)
}

/// `a * b`
pub fn mul(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Mul, a, b)
}

/// `a / b`
pub fn div(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Div, a, b)
}

/// `a = b` (comparison)
pub fn eq(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Eq, a, b)
}

/// `a <> b`
pub fn ne(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Ne, a, b)
}

/// `a < b`
pub fn lt(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Lt, a, b)
}

/// `a <= b`
pub fn le(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Le, a, b)
}

/// `a > b`
pub fn gt(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Gt, a, b)
}

/// `a >= b`
pub fn ge(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Ge, a, b)
}

/// `a and b`
pub fn and(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::And, a, b)
}

/// `a or b`
pub fn or(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Or, a, b)
}

/// `not a`
pub fn not(a: Expr) -> Expr {
    Expr::Un(UnOp::Not, Box::new(a))
}

/// `-a`
pub fn neg(a: Expr) -> Expr {
    Expr::Un(UnOp::Neg, Box::new(a))
}

/// Scalar assignment statement.
pub fn set(name: &str, value: Expr) -> Stmt {
    Stmt::Assign { target: LValue::Var(name.to_string()), value }
}

/// Array element assignment statement.
pub fn set_elem(name: &str, idx: Vec<Expr>, value: Expr) -> Stmt {
    Stmt::Assign { target: LValue::Index(name.to_string(), idx), value }
}

/// Unmasked single-range `do` loop.
pub fn do_loop(var: &str, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::simple_do(var, lo, hi, body)
}

/// Labeled unmasked single-range `do` loop.
pub fn labeled_do(label: &str, var: &str, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::Do {
        label: Some(label.to_string()),
        var: var.to_string(),
        ranges: vec![Range::new(lo, hi)],
        mask: None,
        body,
    }
}

/// Masked `do` loop (`do v = lo, hi where (mask) { ... }`).
pub fn masked_do(var: &str, lo: Expr, hi: Expr, mask: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::Do {
        label: None,
        var: var.to_string(),
        ranges: vec![Range::new(lo, hi)],
        mask: Some(mask),
        body,
    }
}

/// `do` loop over a discontinuous pair of ranges (`do v = r1 and r2`).
pub fn split_range_do(var: &str, r1: Range, r2: Range, body: Vec<Stmt>) -> Stmt {
    Stmt::Do { label: None, var: var.to_string(), ranges: vec![r1, r2], mask: None, body }
}

/// `if` without `else`.
pub fn if_then(cond: Expr, then_body: Vec<Stmt>) -> Stmt {
    Stmt::If { cond, then_body, else_body: Vec::new() }
}

/// `if`/`else`.
pub fn if_else(cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
    Stmt::If { cond, then_body, else_body }
}

/// A builder for whole programs.
#[derive(Debug)]
pub struct ProgramBuilder {
    prog: Program,
}

impl ProgramBuilder {
    /// Starts a program with the given name.
    pub fn new(name: &str) -> Self {
        ProgramBuilder { prog: Program::new(name) }
    }

    /// Declares an integer scalar with an initial value.
    pub fn int_scalar(&mut self, name: &str, init: i64) -> &mut Self {
        self.prog.decls.push(Decl::scalar_init(name, Type::Int, Expr::IntLit(init)));
        self
    }

    /// Declares an uninitialized scalar.
    pub fn scalar(&mut self, name: &str, ty: Type) -> &mut Self {
        self.prog.decls.push(Decl::scalar(name, ty));
        self
    }

    /// Declares an array with `1..bound` ranges per dimension, where each
    /// bound is an expression (commonly `v("n")`).
    pub fn array(&mut self, name: &str, ty: Type, bounds: Vec<Expr>) -> &mut Self {
        let dims = bounds.into_iter().map(|hi| Range::new(Expr::IntLit(1), hi)).collect();
        self.prog.decls.push(Decl::array(name, ty, dims));
        self
    }

    /// Appends a statement to the body.
    pub fn stmt(&mut self, s: Stmt) -> &mut Self {
        self.prog.body.push(s);
        self
    }

    /// Finishes and returns the program.
    pub fn build(&self) -> Program {
        self.prog.clone()
    }
}

/// Constructs the paper's Figure 1 program with size `n`.
///
/// ```text
/// A: do col = 1, n where (mask[col] <> 0) {
///      do i = 1, n { result[i] = q[col, i] * 0.5 + q[i, i] }
///      do i = 1, n { q[i, col] = result[i] }
///    }
/// B: do i = 1, n { do j = 1, n { output[j, i] = f(q[j, i]) } }
/// ```
///
/// Computation `A` computes `result[i]` from the *i-th column* of `q`
/// (represented here by the elements `q[col, i]` and `q[i, i]`, which is
/// what the descriptors see: reads of column `i`) and then modifies
/// column `col` when `mask[col]` is non-zero; `B` post-processes `q`
/// into `output`. This is the running example for split and pipelining.
pub fn figure1_program(n: i64) -> Program {
    let mut b = ProgramBuilder::new("figure1");
    b.int_scalar("n", n)
        .array("mask", Type::Int, vec![v("n")])
        .array("result", Type::Float, vec![v("n")])
        .array("q", Type::Float, vec![v("n"), v("n")])
        .array("output", Type::Float, vec![v("n"), v("n")]);
    let a_inner1 = do_loop(
        "i",
        int(1),
        v("n"),
        vec![set_elem(
            "result",
            vec![v("i")],
            add(
                mul(elem("q", vec![v("col"), v("i")]), float(0.5)),
                elem("q", vec![v("i"), v("i")]),
            ),
        )],
    );
    let a_inner2 = do_loop(
        "i",
        int(1),
        v("n"),
        vec![set_elem("q", vec![v("i"), v("col")], elem("result", vec![v("i")]))],
    );
    let a = Stmt::Do {
        label: Some("A".into()),
        var: "col".into(),
        ranges: vec![Range::new(int(1), v("n"))],
        mask: Some(ne(elem("mask", vec![v("col")]), int(0))),
        body: vec![a_inner1, a_inner2],
    };
    let b_loop = Stmt::Do {
        label: Some("B".into()),
        var: "i".into(),
        ranges: vec![Range::new(int(1), v("n"))],
        mask: None,
        body: vec![do_loop(
            "j",
            int(1),
            v("n"),
            vec![set_elem(
                "output",
                vec![v("j"), v("i")],
                call("f", vec![elem("q", vec![v("j"), v("i")])]),
            )],
        )],
    };
    b.stmt(a).stmt(b_loop);
    b.build()
}

/// Constructs the paper's Figure 4 program with size `n` and split column `a`.
///
/// ```text
/// G: do i = 1, n { x[a, i] = x[a, i] + y[i] }
/// H: do i = 1, n { do j = 1, n { sum = sum + x[i, j] } }
/// ```
///
/// `H` is flow-dependent on `G` only through row `a` of `x`.
pub fn figure4_program(n: i64, a: i64) -> Program {
    let mut b = ProgramBuilder::new("figure4");
    b.int_scalar("n", n)
        .int_scalar("a", a)
        .scalar("sum", Type::Float)
        .array("x", Type::Float, vec![v("n"), v("n")])
        .array("y", Type::Float, vec![v("n")]);
    let g = labeled_do(
        "G",
        "i",
        int(1),
        v("n"),
        vec![set_elem(
            "x",
            vec![v("a"), v("i")],
            add(elem("x", vec![v("a"), v("i")]), elem("y", vec![v("i")])),
        )],
    );
    let h = labeled_do(
        "H",
        "i",
        int(1),
        v("n"),
        vec![do_loop(
            "j",
            int(1),
            v("n"),
            vec![set("sum", add(v("sum"), elem("x", vec![v("i"), v("j")])))],
        )],
    );
    b.stmt(g).stmt(h);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Env, Interp, Value};
    use crate::parse_program;
    use crate::pretty::pretty_print;

    #[test]
    fn figure1_round_trips_through_printer() {
        let p = figure1_program(6);
        let printed = pretty_print(&p);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn figure1_executes() {
        let p = figure1_program(4);
        let mut inputs = Env::new();
        inputs
            .insert("mask".into(), Value::IntArray { dims: vec![(1, 4)], data: vec![1, 0, 1, 0] });
        inputs.insert(
            "q".into(),
            Value::FloatArray {
                dims: vec![(1, 4), (1, 4)],
                data: (0..16).map(|i| i as f64).collect(),
            },
        );
        let env = Interp::new().run(&p, &inputs).unwrap();
        let Value::FloatArray { data, .. } = &env["output"] else { panic!() };
        assert!(data.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn figure4_sum_matches_manual() {
        let p = figure4_program(3, 2);
        let mut inputs = Env::new();
        inputs.insert(
            "x".into(),
            Value::FloatArray { dims: vec![(1, 3), (1, 3)], data: vec![1.0; 9] },
        );
        inputs.insert("y".into(), Value::FloatArray { dims: vec![(1, 3)], data: vec![2.0; 3] });
        let env = Interp::new().run(&p, &inputs).unwrap();
        // Row 2 of x becomes 3.0 each; sum = 3*1 + 3*3 + 3*1 = 15.
        assert_eq!(env["sum"], Value::Float(15.0));
    }

    #[test]
    fn builder_produces_expected_shapes() {
        let mut b = ProgramBuilder::new("t");
        b.int_scalar("n", 3).array("x", Type::Float, vec![v("n")]);
        let p = b.build();
        assert_eq!(p.decls.len(), 2);
        assert!(p.decl("x").unwrap().is_array());
    }
}
