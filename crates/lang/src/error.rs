//! Error types shared by the MF front end.

use std::error::Error;
use std::fmt;

/// Result alias used throughout the crate.
pub type LangResult<T> = Result<T, LangError>;

/// An error produced while lexing, parsing, or interpreting MF source.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// A character the lexer does not recognize.
    Lex {
        /// Explanation of the problem.
        msg: String,
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        col: u32,
    },
    /// A syntax error found by the parser.
    Parse {
        /// Explanation of the problem.
        msg: String,
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        col: u32,
    },
    /// A runtime error raised by the reference interpreter.
    Eval(String),
}

impl LangError {
    /// Creates a lexer error.
    pub fn lex(msg: impl Into<String>, line: u32, col: u32) -> Self {
        LangError::Lex { msg: msg.into(), line, col }
    }

    /// Creates a parse error.
    pub fn parse(msg: impl Into<String>, line: u32, col: u32) -> Self {
        LangError::Parse { msg: msg.into(), line, col }
    }

    /// Creates an interpreter error.
    pub fn eval(msg: impl Into<String>) -> Self {
        LangError::Eval(msg.into())
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { msg, line, col } => {
                write!(f, "lex error at {line}:{col}: {msg}")
            }
            LangError::Parse { msg, line, col } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            LangError::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LangError::parse("expected `do`", 4, 9);
        assert_eq!(e.to_string(), "parse error at 4:9: expected `do`");
    }

    #[test]
    fn eval_error_display() {
        let e = LangError::eval("index out of bounds");
        assert!(e.to_string().contains("index out of bounds"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LangError>();
    }
}
