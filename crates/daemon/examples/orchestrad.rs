//! The `orchestrad` server as a CLI:
//!
//! ```text
//! cargo run -p orchestra-daemon --example orchestrad -- \
//!     [--socket /tmp/orchestrad.sock] [--workers 8] [--max-inflight 4]
//! ```
//!
//! Runs until a client sends `shutdown` (see the `submit` example's
//! `--shutdown` flag), then drains admitted work and exits.

use orchestra_daemon::{AdmissionPolicy, Daemon, DaemonConfig};
use std::path::PathBuf;

fn main() {
    let mut cfg = DaemonConfig { measure_calibration: true, ..DaemonConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--socket" => cfg.socket = PathBuf::from(val("--socket")),
            "--workers" => cfg.workers = val("--workers").parse().expect("--workers: integer"),
            "--max-inflight" => {
                cfg.admission = AdmissionPolicy {
                    max_inflight: val("--max-inflight").parse().expect("--max-inflight: integer"),
                    ..cfg.admission
                };
            }
            "--kernel-scale" => {
                cfg.kernel_scale = val("--kernel-scale").parse().expect("--kernel-scale: number");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let daemon = Daemon::start(cfg).expect("bind socket");
    println!(
        "orchestrad listening on {} with {} workers",
        daemon.socket().display(),
        daemon.workers()
    );
    // Serve until a client's `shutdown` request drains us.
    daemon.join();
    println!("orchestrad drained");
}
