//! A client CLI for `orchestrad`:
//!
//! ```text
//! # submit the built-in demo graph and print its outputs
//! cargo run -p orchestra-daemon --example submit -- --socket /tmp/orchestrad.sock
//!
//! # submit a graph from a Delirium text file
//! cargo run -p orchestra-daemon --example submit -- --graph pipeline.delir
//!
//! # show the daemon's job table, or drain it
//! cargo run -p orchestra-daemon --example submit -- --stats
//! cargo run -p orchestra-daemon --example submit -- --shutdown
//! ```

use orchestra_daemon::{Client, JobOptions};
use orchestra_delirium::{text, DataAnno, DelirGraph, NodeKind};
use std::path::PathBuf;

/// A small two-stage demo: a data-parallel op feeding a merge.
fn demo_graph() -> DelirGraph {
    let mut g = DelirGraph::new();
    let a = g.add_node("A", NodeKind::DataParallel { tasks: 64, mean_cost: 20.0, cv: 0.4 }, None);
    let m = g.add_node("M", NodeKind::Merge { cost: 5.0 }, None);
    g.add_edge(a, m, DataAnno { name: "x".into(), count: 64, elem_bytes: 8 });
    g
}

fn main() {
    let mut socket = std::env::temp_dir().join("orchestrad.sock");
    let mut tenant = "demo".to_string();
    let mut weight = 1.0;
    let mut graph_file: Option<PathBuf> = None;
    let mut action = "submit";
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--socket" => socket = PathBuf::from(val("--socket")),
            "--tenant" => tenant = val("--tenant"),
            "--weight" => weight = val("--weight").parse().expect("--weight: number"),
            "--graph" => graph_file = Some(PathBuf::from(val("--graph"))),
            "--stats" => action = "stats",
            "--shutdown" => action = "shutdown",
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let mut client = Client::connect(&socket, &tenant, weight).expect("connect to orchestrad");
    match action {
        "stats" => {
            let (workers, jobs) = client.stats().expect("stats");
            println!("pool: {workers} workers, {} jobs", jobs.len());
            for j in jobs {
                println!("  job {} tenant={} state={} grant={}", j.job, j.tenant, j.state, j.grant);
            }
        }
        "shutdown" => {
            client.shutdown().expect("drain");
            println!("daemon drained");
        }
        _ => {
            let (name, graph) = match &graph_file {
                Some(p) => {
                    let src = std::fs::read_to_string(p).expect("read graph file");
                    text::parse(&src).expect("parse graph file")
                }
                None => ("demo".to_string(), demo_graph()),
            };
            let job =
                client.submit(&graph, &name, &JobOptions::default()).expect("submission admitted");
            println!("submitted job {job}");
            let result = client.wait(job).expect("job completed");
            println!(
                "job {} finished in {:.0} µs over {} attempt(s)",
                result.job, result.wall_us, result.attempts
            );
            for out in &result.outputs {
                let sum: f64 = out.values.iter().sum();
                println!("  {}: {} values, Σ = {:.6}", out.name, out.values.len(), sum);
            }
        }
    }
}
