//! Tenant sessions and admission control.
//!
//! A connection opens a session with `hello`, naming a tenant and a
//! scheduling weight. Admission control decides what happens to each
//! submitted graph *before* it can touch the worker pool: run it now,
//! queue it behind the running set, or reject it outright. The two
//! admission currencies are in-flight graphs (bounding how many ways
//! the pool is partitioned at once — the cross-graph equalizer
//! degrades past one graph per worker) and total declared tasks
//! (bounding the work a single burst can stage).

/// Limits a daemon enforces at submission time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Graphs allowed to run concurrently; further admissible graphs
    /// queue in submission order.
    pub max_inflight: usize,
    /// Declared-task budget across running *and* queued graphs; a
    /// submission pushing the total past this is rejected (not
    /// queued — the client should retry later).
    pub max_total_tasks: usize,
    /// Largest single graph accepted at all, in declared tasks.
    pub max_graph_tasks: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy { max_inflight: 4, max_total_tasks: 1 << 20, max_graph_tasks: 1 << 18 }
    }
}

/// The admission verdict for one submitted graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Start executing immediately.
    Run,
    /// Admitted, but parked until a running graph finishes.
    Queue,
    /// Refused; the reason travels back in the error response.
    Reject(String),
}

impl AdmissionPolicy {
    /// Decides a submission given the daemon's current load
    /// (`running` graphs in flight, `staged_tasks` declared tasks
    /// across running + queued graphs).
    pub fn admit(&self, graph_tasks: usize, running: usize, staged_tasks: usize) -> Admission {
        if graph_tasks == 0 {
            return Admission::Reject("graph has no tasks".to_string());
        }
        if graph_tasks > self.max_graph_tasks {
            return Admission::Reject(format!(
                "graph declares {graph_tasks} tasks, over the {} per-graph limit",
                self.max_graph_tasks
            ));
        }
        if staged_tasks + graph_tasks > self.max_total_tasks {
            return Admission::Reject(format!(
                "daemon task budget exhausted ({staged_tasks} staged of {})",
                self.max_total_tasks
            ));
        }
        if running >= self.max_inflight {
            return Admission::Queue;
        }
        Admission::Run
    }
}

/// One authenticated tenant, as established by `hello`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Session id (unique per connection).
    pub session: u64,
    /// Tenant name.
    pub name: String,
    /// Scheduling weight for the cross-graph equalizer.
    pub weight: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_orders_run_queue_reject() {
        let p = AdmissionPolicy { max_inflight: 2, max_total_tasks: 1000, max_graph_tasks: 600 };
        assert_eq!(p.admit(100, 0, 0), Admission::Run);
        assert_eq!(p.admit(100, 1, 100), Admission::Run);
        assert_eq!(p.admit(100, 2, 200), Admission::Queue, "inflight cap queues");
        assert!(matches!(p.admit(100, 1, 950), Admission::Reject(_)), "budget rejects");
        assert!(matches!(p.admit(601, 0, 0), Admission::Reject(_)), "oversized graph rejects");
        assert!(matches!(p.admit(0, 0, 0), Admission::Reject(_)), "empty graph rejects");
    }
}
