//! Cross-graph processor allocation: the §4.1.2 finishing-time
//! equalizer applied *between tenants' graphs* instead of between ops
//! inside one graph.
//!
//! Each running graph is summarized as one live
//! [`OpSpec`](orchestra_runtime::OpSpec) — its unfinished ops reduced
//! to remaining tasks and pooled µ/σ, exactly the shape
//! [`OpSpec::from_live`] produces mid-run — and
//! [`allocate_many_with`](orchestra_runtime::alloc::allocate_many_with)
//! partitions the shared worker pool by iteratively equalizing the
//! graphs' [`finish_estimate_live`] totals. A tenant's scheduling
//! weight scales its graph's apparent work (µ and σ multiplied by the
//! weight), so the equalizer hands a weight-2 tenant the share it
//! would hand a graph with twice the remaining work: weighted quotas
//! fall out of the paper's own algorithm rather than a separate
//! quota system.
//!
//! Grants are **widen-only** for the lifetime of a run, mirroring how
//! the in-run partition masks of the threaded pool only ever widen: a
//! graph's thread count is fixed when its executor starts, so the
//! scheduler never pretends it can shrink a live run. Re-equalization
//! happens on every admission, completion, and cancellation — when a
//! graph leaves the pool its workers flow to the survivors, which is
//! precisely the observable a cancelled tenant's eviction leaves
//! behind.

use orchestra_delirium::{DelirGraph, NodeKind};
use orchestra_runtime::alloc::allocate_many_with;
use orchestra_runtime::{
    finish_estimate_live, AllocParams, HostCalibration, OnlineStats, OpSpec, PolicyKind,
};
use std::collections::BTreeMap;

/// One running graph's contribution to the shared pool's load.
#[derive(Debug, Clone)]
pub struct GraphLoad {
    /// Daemon-wide job id.
    pub job: u64,
    /// Owning tenant's scheduling weight (> 0).
    pub weight: f64,
    /// Live specs of the graph's unfinished ops.
    pub specs: Vec<OpSpec>,
}

/// Summarizes a graph's ops as live [`OpSpec`]s at admission time:
/// every op is still unstarted, so "remaining" is its full task count
/// and the cost statistics are seeded from the graph's declared
/// cost model — the same warm-start a live queue's sampled
/// [`OnlineStats`] would provide mid-run.
pub fn graph_load_specs(g: &DelirGraph, policy: PolicyKind) -> Vec<OpSpec> {
    let mut specs = Vec::new();
    let mut push = |tasks: usize, mean: f64, cv: f64| {
        if tasks == 0 {
            return;
        }
        // Two symmetric samples around the declared mean reproduce
        // (µ, σ = µ·cv) exactly in the online accumulator.
        let mut stats = OnlineStats::new();
        stats.observe(mean * (1.0 + cv));
        stats.observe(mean * (1.0 - cv));
        specs.push(OpSpec::from_live(tasks, Some(&stats), policy));
    };
    for n in &g.nodes {
        match &n.kind {
            NodeKind::Task { cost } | NodeKind::Merge { cost } => push(1, *cost, 0.0),
            NodeKind::DataParallel { tasks, mean_cost, cv } => push(*tasks, *mean_cost, *cv),
            NodeKind::Mixture { populations } => {
                for p in populations {
                    push(p.tasks, p.mean_cost, p.cv);
                }
            }
        }
    }
    specs
}

/// Total declared tasks of a graph — the admission-control currency.
pub fn graph_tasks(g: &DelirGraph) -> usize {
    g.nodes
        .iter()
        .map(|n| match &n.kind {
            NodeKind::Task { .. } | NodeKind::Merge { .. } => 1,
            NodeKind::DataParallel { tasks, .. } => *tasks,
            NodeKind::Mixture { populations } => populations.iter().map(|p| p.tasks).sum(),
        })
        .sum()
}

/// Pools a graph's live op specs into the single spec the cross-graph
/// equalizer compares, with the tenant weight folded into µ/σ.
fn combined_spec(load: &GraphLoad) -> OpSpec {
    let tasks: usize = load.specs.iter().map(|s| s.tasks).sum();
    if tasks == 0 {
        return OpSpec::empty(PolicyKind::Taper);
    }
    let work: f64 = load.specs.iter().map(OpSpec::total_work).sum();
    let mean = work / tasks as f64;
    // Pooled variance over the ops' populations: E[x²] − µ².
    let ex2: f64 = load
        .specs
        .iter()
        .map(|s| s.tasks as f64 * (s.std_dev * s.std_dev + s.mean * s.mean))
        .sum::<f64>()
        / tasks as f64;
    let std_dev = (ex2 - mean * mean).max(0.0).sqrt();
    let policy = load.specs[0].policy;
    OpSpec {
        tasks,
        mean: mean * load.weight,
        std_dev: std_dev * load.weight,
        bytes_in: 0,
        bytes_out: 0,
        policy,
    }
}

/// The daemon's shared-pool partitioner.
#[derive(Debug)]
pub struct PoolScheduler {
    workers: usize,
    cal: HostCalibration,
    params: AllocParams,
    running: Vec<GraphLoad>,
    grants: BTreeMap<u64, usize>,
}

impl PoolScheduler {
    /// A scheduler over `workers` shared workers with a fixed nominal
    /// calibration (deterministic; tests and replay).
    pub fn new(workers: usize) -> Self {
        Self::with_calibration(workers, HostCalibration::with_overhead(0.05))
    }

    /// A scheduler using a caller-supplied (typically measured) host
    /// calibration for its finishing-time estimates.
    pub fn with_calibration(workers: usize, cal: HostCalibration) -> Self {
        PoolScheduler {
            workers: workers.max(1),
            cal,
            params: AllocParams::default(),
            running: Vec::new(),
            grants: BTreeMap::new(),
        }
    }

    /// Size of the pool being partitioned.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Admits a graph and returns its worker grant. Existing grants
    /// are floored at their current value (widen-only); the newcomer
    /// receives its equalized share of the pool.
    pub fn admit(&mut self, load: GraphLoad) -> usize {
        let job = load.job;
        self.running.push(load);
        self.rebalance();
        self.grants[&job]
    }

    /// Removes a finished (or cancelled) graph and re-equalizes: its
    /// workers flow to the surviving graphs, whose grants only widen.
    pub fn complete(&mut self, job: u64) {
        self.running.retain(|l| l.job != job);
        self.grants.remove(&job);
        self.rebalance();
    }

    /// The current grant of a running job.
    pub fn grant(&self, job: u64) -> Option<usize> {
        self.grants.get(&job).copied()
    }

    /// All current grants, by job id.
    pub fn grants(&self) -> &BTreeMap<u64, usize> {
        &self.grants
    }

    /// Re-runs the equalizer over the running graphs. Each job's new
    /// grant is `max(old, equalized share)`: a live run's thread count
    /// cannot shrink, so shares only ratchet up — the transient
    /// over-commit this allows is bounded by one pool's worth per
    /// graph and decays as graphs complete.
    fn rebalance(&mut self) {
        if self.running.is_empty() {
            return;
        }
        let specs: Vec<OpSpec> = self.running.iter().map(combined_spec).collect();
        let shares = if specs.len() <= self.workers {
            allocate_many_with(&specs, self.workers, &self.params, |s, p| {
                finish_estimate_live(s, p, &self.cal).total()
            })
        } else {
            // More graphs than workers: the equalizer needs one worker
            // per op, so degrade to one worker each (admission control
            // is expected to keep the pool out of this regime).
            vec![1; specs.len()]
        };
        for (load, share) in self.running.iter().zip(shares) {
            let g = self.grants.entry(load.job).or_insert(0);
            *g = (*g).max(share.max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(job: u64, weight: f64, tasks: usize, mean: f64) -> GraphLoad {
        let mut stats = OnlineStats::new();
        stats.observe(mean);
        GraphLoad {
            job,
            weight,
            specs: vec![OpSpec::from_live(tasks, Some(&stats), PolicyKind::Taper)],
        }
    }

    #[test]
    fn a_lone_graph_gets_the_whole_pool() {
        let mut s = PoolScheduler::new(8);
        assert_eq!(s.admit(load(1, 1.0, 256, 50.0)), 8);
    }

    #[test]
    fn equal_loads_split_evenly_and_weights_tilt_the_split() {
        let mut s = PoolScheduler::new(8);
        // Admitted together (neither ran yet), so neither grant is
        // pre-widened: seed both before reading the shares.
        s.running.push(load(1, 1.0, 512, 50.0));
        s.running.push(load(2, 1.0, 512, 50.0));
        s.rebalance();
        assert_eq!(s.grant(1), Some(4));
        assert_eq!(s.grant(2), Some(4));

        let mut s = PoolScheduler::new(8);
        s.running.push(load(1, 3.0, 512, 50.0));
        s.running.push(load(2, 1.0, 512, 50.0));
        s.rebalance();
        assert!(
            s.grant(1).unwrap() > s.grant(2).unwrap(),
            "the weight-3 tenant must out-rank the weight-1 tenant: {:?}",
            s.grants()
        );
    }

    #[test]
    fn completion_widens_the_survivor_to_the_full_pool() {
        let mut s = PoolScheduler::new(8);
        s.running.push(load(1, 1.0, 512, 50.0));
        s.running.push(load(2, 1.0, 512, 50.0));
        s.rebalance();
        assert_eq!(s.grant(2), Some(4));
        s.complete(1);
        assert_eq!(s.grant(1), None, "finished jobs drop out of the table");
        assert_eq!(s.grant(2), Some(8), "the survivor inherits the freed workers");
    }

    #[test]
    fn grants_are_widen_only_across_admissions() {
        let mut s = PoolScheduler::new(8);
        assert_eq!(s.admit(load(1, 1.0, 512, 50.0)), 8, "alone: everything");
        let g2 = s.admit(load(2, 1.0, 512, 50.0));
        assert_eq!(s.grant(1), Some(8), "a live run never shrinks");
        assert!((1..=8).contains(&g2), "newcomer gets an equalized share, got {g2}");
    }

    #[test]
    fn more_graphs_than_workers_degrades_to_one_each() {
        let mut s = PoolScheduler::new(2);
        for j in 0..4 {
            s.running.push(load(j, 1.0, 16, 10.0));
        }
        s.rebalance();
        for j in 0..4 {
            assert_eq!(s.grant(j), Some(1));
        }
    }

    #[test]
    fn graph_specs_reflect_the_declared_cost_model() {
        let mut g = DelirGraph::new();
        g.add_node("A", NodeKind::DataParallel { tasks: 100, mean_cost: 8.0, cv: 0.5 }, None);
        g.add_node("T", NodeKind::Task { cost: 3.0 }, None);
        let specs = graph_load_specs(&g, PolicyKind::Taper);
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].tasks, 100);
        assert!((specs[0].mean - 8.0).abs() < 1e-9);
        assert!((specs[0].std_dev - 4.0).abs() < 1e-9, "σ = µ·cv");
        assert_eq!(graph_tasks(&g), 101);
    }
}
