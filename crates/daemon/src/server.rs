//! `orchestrad`: the long-lived graph-serving daemon.
//!
//! One process owns one shared worker pool and serves many tenants
//! over a unix-domain socket. Each connection is a session (`hello`
//! names the tenant and its scheduling weight); each `submit` carries
//! a Delirium graph that passes admission control, receives a worker
//! grant from the cross-graph equalizer
//! ([`PoolScheduler`](crate::sched::PoolScheduler)), and executes on
//! a real backend under a per-job
//! [`CancelToken`](orchestra_runtime::CancelToken). Jobs submitted
//! with a checkpoint directory run under
//! [`execute_graph_resumable`](orchestra_runtime::execute_graph_resumable),
//! so a worker-pool crash mid-job restores from the latest snapshot
//! instead of losing the tenant's work.
//!
//! Shutdown is a *drain*: new submissions are refused, admitted work
//! (running and queued) finishes, and only then does the listener
//! close. A tenant that cancels — or whose deadline expires — frees
//! its worker partition at the next chunk-claim boundary, and the
//! scheduler immediately re-equalizes the freed workers to the
//! surviving graphs.

use crate::sched::{graph_load_specs, graph_tasks, GraphLoad, PoolScheduler};
use crate::session::{Admission, AdmissionPolicy, Tenant};
use crate::wire::{
    read_frame, write_frame, JobOptions, JobRow, Request, Response, WireOutput, WireResult,
};
use orchestra_runtime::executor::ExecutorOptions;
use orchestra_runtime::threaded::ExecutorBackend;
use orchestra_runtime::{
    execute_graph_resumable, CancelToken, CheckpointSpec, FaultPlan, HostCalibration, RunError,
    SpinKernel,
};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How the daemon is sized and where it listens.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix-domain socket path. A stale file from a dead daemon is
    /// removed on startup.
    pub socket: PathBuf,
    /// Shared worker pool size partitioned across graphs
    /// (0 = the host's available parallelism).
    pub workers: usize,
    /// Admission limits.
    pub admission: AdmissionPolicy,
    /// Spin-kernel scale for served graphs (1.0 = cost hints are µs).
    pub kernel_scale: f64,
    /// Measure the host calibration at startup instead of using the
    /// nominal constants (slower start, sharper estimates).
    pub measure_calibration: bool,
    /// Test hook: a fault plan injected into the *next* submitted job,
    /// consumed once. This is how the recovery tests crash the worker
    /// pool under a checkpointed tenant graph without reaching into
    /// the daemon's internals.
    pub chaos: Option<FaultPlan>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            socket: std::env::temp_dir().join("orchestrad.sock"),
            workers: 0,
            admission: AdmissionPolicy::default(),
            kernel_scale: 1.0,
            measure_calibration: false,
            chaos: None,
        }
    }
}

/// A job's lifecycle. Terminal states keep what `wait` needs.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Running,
    Done(WireResult),
    Failed(String),
    Cancelled,
}

impl JobState {
    fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_) | JobState::Cancelled)
    }

    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

struct Job {
    tenant: Tenant,
    graph: orchestra_delirium::DelirGraph,
    opts: JobOptions,
    tasks: usize,
    submitted: Instant,
    token: CancelToken,
    state: JobState,
}

#[derive(Default)]
struct State {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    running: usize,
    staged_tasks: usize,
    draining: bool,
}

struct Inner {
    admission: AdmissionPolicy,
    workers: usize,
    kernel_scale: f64,
    state: Mutex<State>,
    changed: Condvar,
    sched: Mutex<PoolScheduler>,
    chaos: Mutex<Option<FaultPlan>>,
    next_job: AtomicU64,
    next_session: AtomicU64,
    stop: AtomicBool,
}

/// A running daemon: hold it to keep serving, [`shutdown`] it (or send
/// the wire `shutdown` request) to drain and exit.
///
/// [`shutdown`]: Daemon::shutdown
pub struct Daemon {
    inner: Arc<Inner>,
    socket: PathBuf,
    accept: Option<thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds the socket and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn start(cfg: DaemonConfig) -> io::Result<Daemon> {
        let workers = if cfg.workers == 0 {
            thread::available_parallelism().map_or(4, std::num::NonZero::get)
        } else {
            cfg.workers
        };
        let cal = if cfg.measure_calibration {
            HostCalibration::measure()
        } else {
            HostCalibration::with_overhead(0.05)
        };
        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            admission: cfg.admission,
            workers,
            kernel_scale: cfg.kernel_scale,
            state: Mutex::new(State::default()),
            changed: Condvar::new(),
            sched: Mutex::new(PoolScheduler::with_calibration(workers, cal)),
            chaos: Mutex::new(cfg.chaos),
            next_job: AtomicU64::new(1),
            next_session: AtomicU64::new(1),
            stop: AtomicBool::new(false),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = thread::spawn(move || accept_loop(&listener, &accept_inner));
        Ok(Daemon { inner, socket: cfg.socket, accept: Some(accept) })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &std::path::Path {
        &self.socket
    }

    /// Size of the shared worker pool.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Blocks until a client's wire `shutdown` request drains the
    /// daemon, then removes the socket. The server-CLI main loop.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }

    /// Drains and stops: refuses new submissions, waits for admitted
    /// work to finish, closes the listener. Idempotent.
    pub fn shutdown(&mut self) {
        drain(&self.inner);
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Blocks until every admitted (running or queued) job is terminal.
fn drain(inner: &Inner) {
    let mut st = inner.state.lock().expect("daemon state poisoned");
    st.draining = true;
    while st.running > 0 || !st.queue.is_empty() {
        st = inner.changed.wait(st).expect("daemon state poisoned");
    }
}

fn accept_loop(listener: &UnixListener, inner: &Arc<Inner>) {
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                thread::spawn(move || {
                    let _ = serve_connection(stream, &conn_inner);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Handles one client connection: a `hello` handshake, then a request
/// loop until the peer hangs up (or a `shutdown` drains the daemon).
fn serve_connection(mut stream: UnixStream, inner: &Arc<Inner>) -> io::Result<()> {
    let tenant = match handshake(&mut stream, inner)? {
        Some(t) => t,
        None => return Ok(()),
    };
    while let Some(payload) = read_frame(&mut stream)? {
        let resp = match Request::decode(&payload) {
            Err(msg) => Response::Err { msg },
            Ok(Request::Hello { .. }) => {
                Response::Err { msg: "session already established".to_string() }
            }
            Ok(Request::Submit { opts, graph }) => submit(inner, &tenant, opts, &graph),
            Ok(Request::Wait { job }) => wait(inner, job),
            Ok(Request::Cancel { job }) => cancel(inner, job),
            Ok(Request::Stats) => stats(inner),
            Ok(Request::Shutdown) => {
                drain(inner);
                write_frame(&mut stream, &Response::Drained.encode())?;
                inner.stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
        };
        write_frame(&mut stream, &resp.encode())?;
    }
    Ok(())
}

fn handshake(stream: &mut UnixStream, inner: &Inner) -> io::Result<Option<Tenant>> {
    let Some(payload) = read_frame(stream)? else {
        return Ok(None);
    };
    match Request::decode(&payload) {
        Ok(Request::Hello { tenant, weight }) => {
            let session = inner.next_session.fetch_add(1, Ordering::Relaxed);
            let t = Tenant { session, name: tenant, weight };
            let resp = Response::Hello { session, workers: inner.workers };
            write_frame(stream, &resp.encode())?;
            Ok(Some(t))
        }
        Ok(_) => {
            let resp = Response::Err { msg: "first request must be hello".to_string() };
            write_frame(stream, &resp.encode())?;
            Ok(None)
        }
        Err(msg) => {
            write_frame(stream, &Response::Err { msg }.encode())?;
            Ok(None)
        }
    }
}

fn submit(inner: &Arc<Inner>, tenant: &Tenant, opts: JobOptions, graph_text: &str) -> Response {
    if opts.backend == ExecutorBackend::Simulated {
        return Response::Err {
            msg: "the simulator backend is not served; use threaded, dist, or async".to_string(),
        };
    }
    let (_, graph) = match orchestra_delirium::text::parse(graph_text) {
        Ok(g) => g,
        Err(e) => return Response::Err { msg: format!("graph parse error: {e}") },
    };
    if let Err(e) = graph.validate() {
        return Response::Err { msg: format!("invalid graph: {e}") };
    }
    let tasks = graph_tasks(&graph);
    let mut st = inner.state.lock().expect("daemon state poisoned");
    if st.draining {
        return Response::Err { msg: "daemon is draining".to_string() };
    }
    let verdict = inner.admission.admit(tasks, st.running, st.staged_tasks);
    let state = match verdict {
        Admission::Reject(msg) => return Response::Err { msg },
        Admission::Run => JobState::Running,
        Admission::Queue => JobState::Queued,
    };
    let id = inner.next_job.fetch_add(1, Ordering::Relaxed);
    let run_now = matches!(state, JobState::Running);
    st.staged_tasks += tasks;
    if run_now {
        st.running += 1;
    } else {
        st.queue.push_back(id);
    }
    st.jobs.insert(
        id,
        Job {
            tenant: tenant.clone(),
            graph,
            opts,
            tasks,
            submitted: Instant::now(),
            token: CancelToken::new(),
            state,
        },
    );
    drop(st);
    if run_now {
        spawn_runner(inner, id);
    }
    Response::Submitted { job: id }
}

fn wait(inner: &Inner, job: u64) -> Response {
    let mut st = inner.state.lock().expect("daemon state poisoned");
    loop {
        match st.jobs.get(&job) {
            None => return Response::Err { msg: format!("no such job {job}") },
            Some(j) if j.state.is_terminal() => {
                return match &j.state {
                    JobState::Done(r) => Response::Result(r.clone()),
                    JobState::Failed(msg) => Response::Err { msg: msg.clone() },
                    JobState::Cancelled => Response::Err { msg: RunError::Cancelled.to_string() },
                    _ => unreachable!("terminal state"),
                };
            }
            Some(_) => st = inner.changed.wait(st).expect("daemon state poisoned"),
        }
    }
}

fn cancel(inner: &Inner, job: u64) -> Response {
    let mut st = inner.state.lock().expect("daemon state poisoned");
    let Some(j) = st.jobs.get_mut(&job) else {
        return Response::Err { msg: format!("no such job {job}") };
    };
    j.token.cancel();
    if matches!(j.state, JobState::Queued) {
        // Never started: retire it here — there is no runner to do it.
        j.state = JobState::Cancelled;
        let tasks = j.tasks;
        st.queue.retain(|&q| q != job);
        st.staged_tasks -= tasks;
        inner.changed.notify_all();
    }
    Response::Cancelled { job }
}

fn stats(inner: &Inner) -> Response {
    let st = inner.state.lock().expect("daemon state poisoned");
    let sched = inner.sched.lock().expect("scheduler poisoned");
    let jobs = st
        .jobs
        .iter()
        .map(|(&id, j)| JobRow {
            job: id,
            tenant: j.tenant.name.clone(),
            state: j.state.name().to_string(),
            grant: sched.grant(id).unwrap_or(0),
        })
        .collect();
    Response::Stats { workers: inner.workers, jobs }
}

fn spawn_runner(inner: &Arc<Inner>, job: u64) {
    let inner = Arc::clone(inner);
    thread::spawn(move || run_job(&inner, job));
}

/// Executes one admitted job end to end: grant from the cross-graph
/// equalizer, run (resumable when checkpointed), record the terminal
/// state, release the grant, and pull the next queued job in.
fn run_job(inner: &Arc<Inner>, job: u64) {
    let (graph, opts, token, weight, submitted) = {
        let st = inner.state.lock().expect("daemon state poisoned");
        let j = &st.jobs[&job];
        (j.graph.clone(), j.opts.clone(), j.token.clone(), j.tenant.weight, j.submitted)
    };
    let grant = {
        let mut sched = inner.sched.lock().expect("scheduler poisoned");
        let specs = graph_load_specs(&graph, opts.policy);
        sched.admit(GraphLoad { job, weight, specs })
    };
    let deadline = opts.deadline.map(|d| d.saturating_sub(submitted.elapsed()));
    let outcome = if deadline == Some(Duration::ZERO) {
        Err(RunError::DeadlineExceeded)
    } else {
        let exec_opts = ExecutorOptions {
            backend: opts.backend,
            policy: opts.policy,
            seed: opts.seed,
            threads: grant,
            drivers: grant,
            cancel: Some(token),
            deadline,
            checkpoint: opts.checkpoint_dir.as_ref().map(CheckpointSpec::new),
            faults: inner.chaos.lock().expect("chaos poisoned").take(),
            ..ExecutorOptions::default()
        };
        let kernel = SpinKernel::with_scale(inner.kernel_scale);
        execute_graph_resumable(&graph, &exec_opts, &kernel)
    };
    let state = match outcome {
        Ok(run) => JobState::Done(WireResult {
            job,
            wall_us: run.wall_us,
            attempts: run.attempts,
            resumed_tasks: run.resumed_tasks,
            outputs: run
                .op_names
                .iter()
                .zip(run.outputs)
                .map(|(name, values)| WireOutput { name: name.clone(), values })
                .collect(),
        }),
        Err(RunError::Cancelled) => JobState::Cancelled,
        Err(e) => JobState::Failed(e.to_string()),
    };
    inner.sched.lock().expect("scheduler poisoned").complete(job);
    let mut st = inner.state.lock().expect("daemon state poisoned");
    let tasks = st.jobs[&job].tasks;
    if let Some(j) = st.jobs.get_mut(&job) {
        j.state = state;
    }
    st.running -= 1;
    st.staged_tasks -= tasks;
    // Pump the queue: freed capacity starts the oldest queued job.
    while st.running < inner.admission.max_inflight {
        let Some(next) = st.queue.pop_front() else { break };
        if let Some(j) = st.jobs.get_mut(&next) {
            j.state = JobState::Running;
            st.running += 1;
            spawn_runner(inner, next);
        }
    }
    inner.changed.notify_all();
}
