//! The `orchestrad` wire protocol: length-prefixed text frames.
//!
//! Every message is one frame — a little-endian `u32` payload length
//! followed by that many bytes of UTF-8 text. The text is line
//! oriented: the first line is the verb with `key=value` fields, and
//! some messages carry a body on the following lines (a Delirium
//! graph in [`text`](orchestra_delirium::text) form for `submit`, one
//! `out` line per op for `result`). Output values travel as `f64`
//! *bit patterns* in hex, so what the daemon computed is what the
//! client reassembles — bitwise, with no decimal round-trip in
//! between.
//!
//! The protocol is deliberately hand-rolled over `std` only: the
//! workspace is offline and the paper's runtime needs nothing richer
//! than "submit a graph, stream back results".

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::time::Duration;

use orchestra_runtime::threaded::ExecutorBackend;
use orchestra_runtime::PolicyKind;

/// Protocol revision, checked in `hello`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's payload; a graph plus its outputs fits
/// comfortably, and a corrupt length prefix fails fast instead of
/// attempting a multi-gigabyte allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one frame: `u32` little-endian length, then the payload.
///
/// # Errors
///
/// Propagates the transport's I/O errors; payloads over [`MAX_FRAME`]
/// are rejected with [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME as usize {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream (the
/// peer closed between frames); a close *inside* a frame is an error.
///
/// # Errors
///
/// Propagates transport errors; oversized lengths and invalid UTF-8
/// are [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let n = u32::from_le_bytes(len);
    if n > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length out of range"));
    }
    let mut buf = vec![0u8; n as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Per-job execution options a tenant may choose. This is the subset
/// of [`ExecutorOptions`](orchestra_runtime::ExecutorOptions) that
/// makes sense across a process boundary — thread counts come from
/// the daemon's cross-graph scheduler, not the client.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOptions {
    /// Execution engine for this graph. The simulator is not served:
    /// it models an nCUBE-2, not the daemon's host pool.
    pub backend: ExecutorBackend,
    /// Chunk policy for the graph's data-parallel ops.
    pub policy: PolicyKind,
    /// Cost-sampling seed, so resubmitting the same graph with the
    /// same seed is bitwise-reproducible.
    pub seed: u64,
    /// Submission-to-completion deadline; the daemon aborts the job
    /// with `DeadlineExceeded` once it expires.
    pub deadline: Option<Duration>,
    /// Snapshot directory on the *daemon's* filesystem. When set the
    /// job runs under
    /// [`execute_graph_resumable`](orchestra_runtime::execute_graph_resumable)
    /// and survives a worker-pool crash by restoring from the latest
    /// snapshot.
    pub checkpoint_dir: Option<String>,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            backend: ExecutorBackend::Threaded,
            policy: PolicyKind::Taper,
            seed: 0x5eed,
            deadline: None,
            checkpoint_dir: None,
        }
    }
}

fn backend_name(b: ExecutorBackend) -> &'static str {
    match b {
        ExecutorBackend::Simulated => "simulated",
        ExecutorBackend::Threaded => "threaded",
        ExecutorBackend::ThreadedDist => "dist",
        ExecutorBackend::Async => "async",
    }
}

fn parse_backend(s: &str) -> Option<ExecutorBackend> {
    match s {
        "simulated" => Some(ExecutorBackend::Simulated),
        "threaded" => Some(ExecutorBackend::Threaded),
        "dist" => Some(ExecutorBackend::ThreadedDist),
        "async" => Some(ExecutorBackend::Async),
        _ => None,
    }
}

fn policy_name(p: PolicyKind) -> &'static str {
    match p {
        PolicyKind::Static => "static",
        PolicyKind::SelfSched => "selfsched",
        PolicyKind::Gss => "gss",
        PolicyKind::Factoring => "factoring",
        PolicyKind::Taper => "taper",
        PolicyKind::TaperCostFn => "tapercost",
    }
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    match s {
        "static" => Some(PolicyKind::Static),
        "selfsched" => Some(PolicyKind::SelfSched),
        "gss" => Some(PolicyKind::Gss),
        "factoring" => Some(PolicyKind::Factoring),
        "taper" => Some(PolicyKind::Taper),
        "tapercost" => Some(PolicyKind::TaperCostFn),
        _ => None,
    }
}

/// A request frame, client → daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens a session: tenant identity and scheduling weight.
    Hello {
        /// Tenant name (one `[A-Za-z0-9_.-]+` token).
        tenant: String,
        /// Scheduling weight (> 0); scales this tenant's share of the
        /// worker pool in the cross-graph equalizer.
        weight: f64,
    },
    /// Submits a graph (the body is its Delirium text form).
    Submit {
        /// Execution options for this job.
        opts: JobOptions,
        /// `delirium … end` text, as printed by
        /// [`text::print`](orchestra_delirium::text::print).
        graph: String,
    },
    /// Blocks until the job reaches a terminal state.
    Wait {
        /// Job id from [`Response::Submitted`].
        job: u64,
    },
    /// Requests cooperative cancellation of a running or queued job.
    Cancel {
        /// Job id from [`Response::Submitted`].
        job: u64,
    },
    /// Asks for the daemon's live job table and worker grants.
    Stats,
    /// Asks the daemon to drain: finish running jobs, refuse new ones,
    /// close the socket.
    Shutdown,
}

/// One op's output buffer on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireOutput {
    /// Op (node) name.
    pub name: String,
    /// Output values, bit-exact.
    pub values: Vec<f64>,
}

/// One completed job's result.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// The job this result belongs to.
    pub job: u64,
    /// Wall-clock time across all attempts, µs.
    pub wall_us: f64,
    /// Executions launched (> 1 when crash recovery resumed the job).
    pub attempts: usize,
    /// Tasks restored from a snapshot rather than re-executed.
    pub resumed_tasks: usize,
    /// Per-op outputs, in the executed plan's op order.
    pub outputs: Vec<WireOutput>,
}

/// One row of the daemon's live job table.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRow {
    /// Job id.
    pub job: u64,
    /// Owning tenant.
    pub tenant: String,
    /// `queued` / `running` / `done` / `failed` / `cancelled`.
    pub state: String,
    /// Workers currently granted by the cross-graph scheduler (0 for
    /// queued or terminal jobs).
    pub grant: usize,
}

/// A response frame, daemon → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session opened.
    Hello {
        /// Session id (diagnostic only).
        session: u64,
        /// Size of the shared worker pool being partitioned.
        workers: usize,
    },
    /// Graph admitted (possibly queued); the id names it from now on.
    Submitted {
        /// Daemon-wide job id.
        job: u64,
    },
    /// A `wait` completed with the job's outputs.
    Result(WireResult),
    /// Cancellation request acknowledged (delivery, not completion).
    Cancelled {
        /// The job the cancel was delivered to.
        job: u64,
    },
    /// The live job table.
    Stats {
        /// Pool size.
        workers: usize,
        /// One row per job the daemon still remembers.
        jobs: Vec<JobRow>,
    },
    /// Drain finished; the daemon is exiting.
    Drained,
    /// Any failure: admission rejection, parse error, cancelled or
    /// failed job on `wait`.
    Err {
        /// Human-readable reason (single line).
        msg: String,
    },
}

/// Splits `key=value` fields of a verb line into a map.
fn fields(line: &str) -> BTreeMap<&str, &str> {
    line.split_whitespace().filter_map(|w| w.split_once('=')).collect()
}

fn need<'a>(f: &BTreeMap<&str, &'a str>, key: &str) -> Result<&'a str, String> {
    f.get(key).copied().ok_or_else(|| format!("missing field `{key}`"))
}

fn need_u64(f: &BTreeMap<&str, &str>, key: &str) -> Result<u64, String> {
    need(f, key)?.parse().map_err(|_| format!("field `{key}` is not an integer"))
}

/// Whether `name` is a valid tenant token (so names never need
/// escaping on the wire).
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { tenant, weight } => {
                format!("hello v={PROTOCOL_VERSION} tenant={tenant} weight={weight}")
            }
            Request::Submit { opts, graph } => {
                let mut s = format!(
                    "submit backend={} policy={} seed={}",
                    backend_name(opts.backend),
                    policy_name(opts.policy),
                    opts.seed
                );
                if let Some(d) = opts.deadline {
                    s.push_str(&format!(" deadline_us={}", d.as_micros()));
                }
                if let Some(dir) = &opts.checkpoint_dir {
                    s.push_str(&format!(" checkpoint={dir}"));
                }
                s.push('\n');
                s.push_str(graph);
                s
            }
            Request::Wait { job } => format!("wait job={job}"),
            Request::Cancel { job } => format!("cancel job={job}"),
            Request::Stats => "stats".to_string(),
            Request::Shutdown => "shutdown".to_string(),
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// Returns a one-line reason for unknown verbs or malformed
    /// fields (the daemon echoes it back in [`Response::Err`]).
    pub fn decode(payload: &str) -> Result<Request, String> {
        let (head, body) = match payload.split_once('\n') {
            Some((h, b)) => (h, b),
            None => (payload, ""),
        };
        let verb = head.split_whitespace().next().unwrap_or("");
        let f = fields(head);
        match verb {
            "hello" => {
                let v: u32 = need_u64(&f, "v")?
                    .try_into()
                    .map_err(|_| "version out of range".to_string())?;
                if v != PROTOCOL_VERSION {
                    return Err(format!("protocol version {v} unsupported"));
                }
                let tenant = need(&f, "tenant")?.to_string();
                if !valid_tenant(&tenant) {
                    return Err(format!("invalid tenant name `{tenant}`"));
                }
                let weight: f64 = need(&f, "weight")?
                    .parse()
                    .map_err(|_| "field `weight` is not a number".to_string())?;
                if !(weight.is_finite() && weight > 0.0) {
                    return Err("weight must be finite and positive".to_string());
                }
                Ok(Request::Hello { tenant, weight })
            }
            "submit" => {
                let backend = parse_backend(need(&f, "backend")?)
                    .ok_or_else(|| "unknown backend".to_string())?;
                let policy = parse_policy(need(&f, "policy")?)
                    .ok_or_else(|| "unknown policy".to_string())?;
                let seed = need_u64(&f, "seed")?;
                let deadline = match f.get("deadline_us") {
                    Some(v) => Some(Duration::from_micros(
                        v.parse().map_err(|_| "bad deadline_us".to_string())?,
                    )),
                    None => None,
                };
                let checkpoint_dir = f.get("checkpoint").map(|s| (*s).to_string());
                Ok(Request::Submit {
                    opts: JobOptions { backend, policy, seed, deadline, checkpoint_dir },
                    graph: body.to_string(),
                })
            }
            "wait" => Ok(Request::Wait { job: need_u64(&f, "job")? }),
            "cancel" => Ok(Request::Cancel { job: need_u64(&f, "job")? }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request `{other}`")),
        }
    }
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Response::Hello { session, workers } => {
                format!("ok-hello session={session} workers={workers}")
            }
            Response::Submitted { job } => format!("ok-submit job={job}"),
            Response::Result(r) => {
                let mut s = format!(
                    "ok-result job={} wall_us={} attempts={} resumed={} outs={}",
                    r.job,
                    r.wall_us,
                    r.attempts,
                    r.resumed_tasks,
                    r.outputs.len()
                );
                for o in &r.outputs {
                    s.push('\n');
                    s.push_str(&format!("out {} {}", o.name, o.values.len()));
                    for v in &o.values {
                        s.push_str(&format!(" {:016x}", v.to_bits()));
                    }
                }
                s
            }
            Response::Cancelled { job } => format!("ok-cancel job={job}"),
            Response::Stats { workers, jobs } => {
                let mut s = format!("ok-stats workers={workers} jobs={}", jobs.len());
                for j in jobs {
                    s.push('\n');
                    s.push_str(&format!(
                        "job id={} tenant={} state={} grant={}",
                        j.job, j.tenant, j.state, j.grant
                    ));
                }
                s
            }
            Response::Drained => "ok-drained".to_string(),
            Response::Err { msg } => format!("err {}", msg.replace('\n', " ")),
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// Returns a one-line reason when the payload is not a valid
    /// response frame.
    pub fn decode(payload: &str) -> Result<Response, String> {
        let mut lines = payload.lines();
        let head = lines.next().unwrap_or("");
        let verb = head.split_whitespace().next().unwrap_or("");
        let f = fields(head);
        match verb {
            "ok-hello" => Ok(Response::Hello {
                session: need_u64(&f, "session")?,
                workers: need_u64(&f, "workers")? as usize,
            }),
            "ok-submit" => Ok(Response::Submitted { job: need_u64(&f, "job")? }),
            "ok-result" => {
                let mut outputs = Vec::new();
                for line in lines {
                    let mut w = line.split_whitespace();
                    if w.next() != Some("out") {
                        return Err("malformed result body".to_string());
                    }
                    let name = w.next().ok_or_else(|| "missing op name".to_string())?.to_string();
                    let n: usize = w
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| "missing value count".to_string())?;
                    let values: Vec<f64> = w
                        .map(|h| u64::from_str_radix(h, 16).map(f64::from_bits))
                        .collect::<Result<_, _>>()
                        .map_err(|_| "malformed value bits".to_string())?;
                    if values.len() != n {
                        return Err("value count mismatch".to_string());
                    }
                    outputs.push(WireOutput { name, values });
                }
                let declared = need_u64(&f, "outs")? as usize;
                if outputs.len() != declared {
                    return Err("output count mismatch".to_string());
                }
                Ok(Response::Result(WireResult {
                    job: need_u64(&f, "job")?,
                    wall_us: need(&f, "wall_us")?.parse().map_err(|_| "bad wall_us".to_string())?,
                    attempts: need_u64(&f, "attempts")? as usize,
                    resumed_tasks: need_u64(&f, "resumed")? as usize,
                    outputs,
                }))
            }
            "ok-cancel" => Ok(Response::Cancelled { job: need_u64(&f, "job")? }),
            "ok-stats" => {
                let mut jobs = Vec::new();
                for line in lines {
                    let jf = fields(line);
                    jobs.push(JobRow {
                        job: need_u64(&jf, "id")?,
                        tenant: need(&jf, "tenant")?.to_string(),
                        state: need(&jf, "state")?.to_string(),
                        grant: need_u64(&jf, "grant")? as usize,
                    });
                }
                Ok(Response::Stats { workers: need_u64(&f, "workers")? as usize, jobs })
            }
            "ok-drained" => Ok(Response::Drained),
            "err" => Ok(Response::Err { msg: head.strip_prefix("err ").unwrap_or("").to_string() }),
            other => Err(format!("unknown response `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(r: Request) {
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    fn round_trip_resp(r: Response) {
        assert_eq!(Response::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Hello { tenant: "alice".into(), weight: 2.5 });
        round_trip_req(Request::Submit {
            opts: JobOptions {
                backend: ExecutorBackend::ThreadedDist,
                policy: PolicyKind::Gss,
                seed: 42,
                deadline: Some(Duration::from_micros(1_500_000)),
                checkpoint_dir: Some("/tmp/ck".into()),
            },
            graph: "delirium g\nnode A task cost=1\nend\n".into(),
        });
        round_trip_req(Request::Wait { job: 7 });
        round_trip_req(Request::Cancel { job: 7 });
        round_trip_req(Request::Stats);
        round_trip_req(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip_bitwise() {
        // Values chosen to break a decimal round-trip: subnormals,
        // negative zero, and a long irrational fraction.
        let vals = vec![f64::MIN_POSITIVE / 2.0, -0.0, std::f64::consts::PI, 1e300];
        round_trip_resp(Response::Hello { session: 3, workers: 8 });
        round_trip_resp(Response::Submitted { job: 9 });
        round_trip_resp(Response::Result(WireResult {
            job: 9,
            wall_us: 123.5,
            attempts: 2,
            resumed_tasks: 17,
            outputs: vec![
                WireOutput { name: "A".into(), values: vals },
                WireOutput { name: "B".into(), values: vec![] },
            ],
        }));
        round_trip_resp(Response::Cancelled { job: 9 });
        round_trip_resp(Response::Stats {
            workers: 8,
            jobs: vec![JobRow { job: 1, tenant: "a".into(), state: "running".into(), grant: 4 }],
        });
        round_trip_resp(Response::Drained);
        round_trip_resp(Response::Err { msg: "no such job".into() });
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello world").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello world"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn torn_frames_and_bad_lengths_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "abcdef").unwrap();
        let mut torn = &buf[..buf.len() - 2];
        assert!(read_frame(&mut torn).is_err(), "EOF inside a frame");
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err(), "oversized length prefix");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::decode("nonsense").is_err());
        assert!(Request::decode("hello v=1 tenant=a/b weight=1").is_err(), "bad tenant char");
        assert!(Request::decode("hello v=99 tenant=a weight=1").is_err(), "bad version");
        assert!(Request::decode("hello v=1 tenant=a weight=-2").is_err(), "negative weight");
        assert!(Request::decode("submit backend=gpu policy=taper seed=1\n").is_err());
        assert!(Request::decode("wait").is_err(), "missing job id");
    }
}
