//! A small blocking client for `orchestrad`.
//!
//! One [`Client`] is one session over one unix-socket connection:
//! connect with a tenant name and weight, then `submit` / `wait` /
//! `cancel` graphs. Requests on a connection are serialized (the
//! daemon answers them in order); concurrency comes from opening one
//! client per tenant or thread, which is exactly how a serving fleet
//! uses it.

use crate::wire::{
    read_frame, valid_tenant, write_frame, JobOptions, JobRow, Request, Response, WireResult,
};
use orchestra_delirium::DelirGraph;
use std::fmt;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The daemon answered with an error (admission rejection, parse
    /// failure, cancelled/failed job, …).
    Remote(String),
    /// The daemon answered with a frame that doesn't fit the protocol.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Remote(m) => write!(f, "daemon error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected session.
pub struct Client {
    stream: UnixStream,
    session: u64,
    workers: usize,
}

impl Client {
    /// Connects and performs the `hello` handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connection failure, [`ClientError::Remote`]
    /// when the daemon refuses the handshake.
    pub fn connect(socket: &Path, tenant: &str, weight: f64) -> Result<Client, ClientError> {
        if !valid_tenant(tenant) {
            return Err(ClientError::Protocol(format!("invalid tenant name `{tenant}`")));
        }
        let stream = UnixStream::connect(socket)?;
        let mut c = Client { stream, session: 0, workers: 0 };
        match c.call(&Request::Hello { tenant: tenant.to_string(), weight })? {
            Response::Hello { session, workers } => {
                c.session = session;
                c.workers = workers;
                Ok(c)
            }
            other => Err(unexpected(other)),
        }
    }

    /// This session's id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Size of the daemon's shared worker pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submits a graph; returns the job id to `wait`/`cancel` on.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] carries admission rejections and parse
    /// failures verbatim.
    pub fn submit(
        &mut self,
        graph: &DelirGraph,
        name: &str,
        opts: &JobOptions,
    ) -> Result<u64, ClientError> {
        let text = orchestra_delirium::text::print(graph, name);
        match self.call(&Request::Submit { opts: opts.clone(), graph: text })? {
            Response::Submitted { job } => Ok(job),
            other => Err(unexpected(other)),
        }
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// # Errors
    ///
    /// A cancelled job surfaces as [`ClientError::Remote`] with the
    /// runtime's `Cancelled`/`DeadlineExceeded` message.
    pub fn wait(&mut self, job: u64) -> Result<WireResult, ClientError> {
        match self.call(&Request::Wait { job })? {
            Response::Result(r) => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    /// Requests cooperative cancellation of a job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the job id is unknown.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        match self.call(&Request::Cancel { job })? {
            Response::Cancelled { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the daemon's live job table (state + worker grants).
    ///
    /// # Errors
    ///
    /// Transport or protocol failures only.
    pub fn stats(&mut self) -> Result<(usize, Vec<JobRow>), ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { workers, jobs } => Ok((workers, jobs)),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to drain and shut down; returns once the drain
    /// completes.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures only.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Drained => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("daemon hung up".to_string()))?;
        Response::decode(&payload).map_err(ClientError::Protocol)
    }
}

fn unexpected(r: Response) -> ClientError {
    match r {
        Response::Err { msg } => ClientError::Remote(msg),
        other => ClientError::Protocol(format!("unexpected response {other:?}")),
    }
}
