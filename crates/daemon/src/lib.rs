//! `orchestra-daemon`: a multi-tenant graph-serving daemon over the
//! PLDI'93 orchestration runtime.
//!
//! The paper orchestrates interactions *among* parallel computations;
//! within one graph the runtime already rations processors between
//! concurrent ops with the §4.1.2 finishing-time equalizer. This
//! crate closes the remaining gap to a serving system: one long-lived
//! `orchestrad` process owns a shared worker pool and serves many
//! tenants' graphs at once, applying the *same* equalizer across
//! graphs ([`sched`]), admission control and weighted quotas ahead of
//! it ([`session`]), cooperative cancellation and deadlines through
//! the runtime's claim-boundary hooks, and crash recovery for
//! checkpointed jobs via
//! [`execute_graph_resumable`](orchestra_runtime::execute_graph_resumable).
//!
//! The pieces:
//!
//! * [`wire`] — the length-prefixed unix-socket protocol (text
//!   frames, Delirium graphs in their [`text`](orchestra_delirium::text)
//!   form, `f64` outputs as bit patterns).
//! * [`session`] — tenant identity and admission control.
//! * [`sched`] — the cross-graph processor allocator.
//! * [`server`] — the daemon itself ([`Daemon::start`]).
//! * [`client`] — a small blocking client
//!   ([`Client::connect`] → `submit`/`wait`/`cancel`).

pub mod client;
pub mod sched;
pub mod server;
pub mod session;
pub mod wire;

pub use client::{Client, ClientError};
pub use sched::{graph_load_specs, graph_tasks, GraphLoad, PoolScheduler};
pub use server::{Daemon, DaemonConfig};
pub use session::{Admission, AdmissionPolicy, Tenant};
pub use wire::{JobOptions, JobRow, Request, Response, WireOutput, WireResult};
