//! Symbolic expressions, values, and assertions.
//!
//! Following §3.1 of the paper: a *symbolic expression* is a sum of named
//! terms, each with an integer coefficient, plus a constant. A *symbolic
//! value* is either an expression or a *range* (start/end expressions and
//! an integer skip). An *assertion* is a disjunction of conjunctions of
//! inequalities; branch conditions are converted to assertions and
//! propagated through the control-flow graph.
//!
//! Term keys are plain strings. The analysis pipeline uses SSA-name
//! spellings (`"n#1"`); the descriptor layer uses source variable names
//! of unresolved constants (`"n"`, `"a"`, induction variables).

use std::collections::BTreeMap;
use std::fmt;

/// A linear integer symbolic expression: `Σ coeffᵢ·nameᵢ + constant`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SymExpr {
    terms: BTreeMap<String, i64>,
    konst: i64,
}

impl SymExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        SymExpr { terms: BTreeMap::new(), konst: c }
    }

    /// The expression consisting of a single name with coefficient 1.
    pub fn name(n: impl Into<String>) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(n.into(), 1);
        SymExpr { terms, konst: 0 }
    }

    /// Builds an expression from term pairs and a constant.
    pub fn from_terms(pairs: impl IntoIterator<Item = (String, i64)>, konst: i64) -> Self {
        let mut e = SymExpr { terms: BTreeMap::new(), konst };
        for (n, c) in pairs {
            if c != 0 {
                *e.terms.entry(n).or_insert(0) += c;
            }
        }
        e.normalize();
        e
    }

    fn normalize(&mut self) {
        self.terms.retain(|_, c| *c != 0);
    }

    /// The constant part.
    pub fn constant_part(&self) -> i64 {
        self.konst
    }

    /// Iterates over `(name, coefficient)` term pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&str, i64)> {
        self.terms.iter().map(|(n, c)| (n.as_str(), *c))
    }

    /// True if the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the constant value if this expression has no terms.
    pub fn as_constant(&self) -> Option<i64> {
        if self.is_constant() {
            Some(self.konst)
        } else {
            None
        }
    }

    /// Returns `Some(name)` if the expression is exactly `1·name + 0`.
    pub fn as_name(&self) -> Option<&str> {
        if self.konst == 0 && self.terms.len() == 1 {
            let (n, c) = self.terms.iter().next().unwrap();
            if *c == 1 {
                return Some(n);
            }
        }
        None
    }

    /// Whether the expression mentions `name`.
    pub fn mentions(&self, name: &str) -> bool {
        self.terms.contains_key(name)
    }

    /// The coefficient of `name` (zero if absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.terms.get(name).copied().unwrap_or(0)
    }

    /// Sum of two expressions.
    pub fn add(&self, other: &SymExpr) -> SymExpr {
        let mut out = self.clone();
        out.konst += other.konst;
        for (n, c) in &other.terms {
            *out.terms.entry(n.clone()).or_insert(0) += c;
        }
        out.normalize();
        out
    }

    /// Difference of two expressions.
    pub fn sub(&self, other: &SymExpr) -> SymExpr {
        self.add(&other.scale(-1))
    }

    /// Adds a constant.
    pub fn offset(&self, c: i64) -> SymExpr {
        let mut out = self.clone();
        out.konst += c;
        out
    }

    /// Multiplies by an integer constant.
    pub fn scale(&self, k: i64) -> SymExpr {
        if k == 0 {
            return SymExpr::constant(0);
        }
        let mut out = self.clone();
        out.konst *= k;
        for c in out.terms.values_mut() {
            *c *= k;
        }
        out
    }

    /// Product, defined only when at least one side is constant.
    pub fn mul(&self, other: &SymExpr) -> Option<SymExpr> {
        if let Some(k) = other.as_constant() {
            Some(self.scale(k))
        } else {
            self.as_constant().map(|k| other.scale(k))
        }
    }

    /// Substitutes `name := repl` throughout.
    pub fn subst(&self, name: &str, repl: &SymExpr) -> SymExpr {
        let c = self.coeff(name);
        if c == 0 {
            return self.clone();
        }
        let mut base = self.clone();
        base.terms.remove(name);
        base.add(&repl.scale(c))
    }

    /// Compares two expressions when their difference is constant.
    ///
    /// Returns `Some(ordering of self vs other)` only when provable.
    pub fn compare(&self, other: &SymExpr) -> Option<std::cmp::Ordering> {
        self.sub(other).as_constant().map(|d| d.cmp(&0))
    }

    /// Proves `self <= other` (conservatively: `None` means unknown).
    pub fn le(&self, other: &SymExpr) -> Option<bool> {
        self.compare(other).map(|o| o != std::cmp::Ordering::Greater)
    }

    /// Proves `self < other`.
    pub fn lt(&self, other: &SymExpr) -> Option<bool> {
        self.compare(other).map(|o| o == std::cmp::Ordering::Less)
    }

    /// Proves syntactic/arithmetic equality.
    pub fn eq_expr(&self, other: &SymExpr) -> Option<bool> {
        self.compare(other).map(|o| o == std::cmp::Ordering::Equal)
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (n, c) in &self.terms {
            if first {
                match *c {
                    1 => write!(f, "{n}")?,
                    -1 => write!(f, "-{n}")?,
                    c => write!(f, "{c}*{n}")?,
                }
                first = false;
            } else if *c < 0 {
                if *c == -1 {
                    write!(f, " - {n}")?;
                } else {
                    write!(f, " - {}*{n}", -c)?;
                }
            } else if *c == 1 {
                write!(f, " + {n}")?;
            } else {
                write!(f, " + {c}*{n}")?;
            }
        }
        if first {
            write!(f, "{}", self.konst)?;
        } else if self.konst > 0 {
            write!(f, " + {}", self.konst)?;
        } else if self.konst < 0 {
            write!(f, " - {}", -self.konst)?;
        }
        Ok(())
    }
}

/// A symbolic iteration/index range `start..end` with an integer skip.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymRange {
    /// First value (inclusive).
    pub start: SymExpr,
    /// Last value (inclusive).
    pub end: SymExpr,
    /// Stride (non-zero; 1 for dense ranges).
    pub skip: i64,
}

impl SymRange {
    /// Unit-skip range.
    pub fn new(start: SymExpr, end: SymExpr) -> Self {
        SymRange { start, end, skip: 1 }
    }

    /// Constant unit range.
    pub fn constant(lo: i64, hi: i64) -> Self {
        SymRange::new(SymExpr::constant(lo), SymExpr::constant(hi))
    }

    /// A range holding the single value of `e`.
    pub fn point(e: SymExpr) -> Self {
        SymRange { start: e.clone(), end: e, skip: 1 }
    }

    /// True when this range is provably a single point.
    pub fn is_point(&self) -> bool {
        self.start.eq_expr(&self.end) == Some(true)
    }

    /// Proves the range empty (`end < start`).
    pub fn is_empty(&self) -> Option<bool> {
        self.end.lt(&self.start)
    }

    /// Proves two ranges disjoint. `None`/`false` both mean "may overlap";
    /// callers must treat unknown as overlapping (conservative).
    pub fn disjoint(&self, other: &SymRange) -> bool {
        // Provably empty ranges are disjoint from everything.
        if self.is_empty() == Some(true) || other.is_empty() == Some(true) {
            return true;
        }
        if self.end.lt(&other.start) == Some(true) || other.end.lt(&self.start) == Some(true) {
            return true;
        }
        // Same stride, both points reduced: unequal constants on
        // congruence classes (e.g. skip 2 starting at 0 vs 1).
        if self.skip == other.skip && self.skip > 1 {
            if let (Some(a), Some(b)) = (self.start.as_constant(), other.start.as_constant()) {
                if (a - b).rem_euclid(self.skip) != 0 {
                    // Only sound if both ranges stay on their lattice:
                    // true by construction of skip-ranges.
                    return true;
                }
            }
        }
        // Two points with provably different values.
        if self.is_point() && other.is_point() {
            if let Some(ord) = self.start.compare(&other.start) {
                return ord != std::cmp::Ordering::Equal;
            }
        }
        false
    }

    /// Substitutes a name in both bounds.
    pub fn subst(&self, name: &str, repl: &SymExpr) -> SymRange {
        SymRange {
            start: self.start.subst(name, repl),
            end: self.end.subst(name, repl),
            skip: self.skip,
        }
    }

    /// Whether either bound mentions `name`.
    pub fn mentions(&self, name: &str) -> bool {
        self.start.mentions(name) || self.end.mentions(name)
    }

    /// Proves this range contains `other` (start ≤ other.start and
    /// other.end ≤ end). Unknown ⇒ `false`.
    pub fn contains_range(&self, other: &SymRange) -> bool {
        self.start.le(&other.start) == Some(true) && other.end.le(&self.end) == Some(true)
    }

    /// Number of values, when bounds are constant.
    pub fn len_const(&self) -> Option<i64> {
        let (a, b) = (self.start.as_constant()?, self.end.as_constant()?);
        if b < a {
            Some(0)
        } else {
            Some((b - a) / self.skip + 1)
        }
    }
}

impl fmt::Display for SymRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)?;
        if self.skip != 1 {
            write!(f, " by {}", self.skip)?;
        }
        Ok(())
    }
}

/// A symbolic value: a single expression or a range of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymValue {
    /// A single (possibly symbolic) integer value.
    Expr(SymExpr),
    /// A range of values.
    Range(SymRange),
    /// A floating-point constant (the paper permits float constants in
    /// symbolic values; they never appear in index arithmetic).
    FloatConst(ordered::OrderedF64),
    /// Nothing provable.
    Unknown,
}

impl SymValue {
    /// Convenience constructor for a constant integer value.
    pub fn int(v: i64) -> Self {
        SymValue::Expr(SymExpr::constant(v))
    }

    /// The expression if this is a single-expression value.
    pub fn as_expr(&self) -> Option<&SymExpr> {
        match self {
            SymValue::Expr(e) => Some(e),
            _ => None,
        }
    }

    /// The value as a range (a single expression becomes a point range).
    pub fn to_range(&self) -> Option<SymRange> {
        match self {
            SymValue::Expr(e) => Some(SymRange::point(e.clone())),
            SymValue::Range(r) => Some(r.clone()),
            _ => None,
        }
    }
}

impl fmt::Display for SymValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymValue::Expr(e) => write!(f, "{e}"),
            SymValue::Range(r) => write!(f, "[{r}]"),
            SymValue::FloatConst(v) => write!(f, "{}", v.0),
            SymValue::Unknown => write!(f, "?"),
        }
    }
}

/// Total-ordered `f64` wrapper so symbolic values can be hashed.
pub mod ordered {
    /// An `f64` with `Eq`/`Ord`/`Hash` via total ordering.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct OrderedF64(pub f64);

    impl Eq for OrderedF64 {}
    impl std::hash::Hash for OrderedF64 {
        fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
            self.0.to_bits().hash(state);
        }
    }
    impl PartialOrd for OrderedF64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for OrderedF64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}

/// Relational operators in normalized inequalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `expr = 0`
    EqZero,
    /// `expr <> 0`
    NeZero,
    /// `expr <= 0`
    LeZero,
}

/// A normalized inequality `expr REL 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ineq {
    /// Left-hand side.
    pub expr: SymExpr,
    /// Relation to zero.
    pub rel: Rel,
}

impl Ineq {
    /// `a = b` as `a-b = 0`.
    pub fn eq(a: &SymExpr, b: &SymExpr) -> Self {
        Ineq { expr: a.sub(b), rel: Rel::EqZero }
    }

    /// `a <> b` as `a-b <> 0`.
    pub fn ne(a: &SymExpr, b: &SymExpr) -> Self {
        Ineq { expr: a.sub(b), rel: Rel::NeZero }
    }

    /// `a <= b` as `a-b <= 0`.
    pub fn le(a: &SymExpr, b: &SymExpr) -> Self {
        Ineq { expr: a.sub(b), rel: Rel::LeZero }
    }

    /// `a < b` as `a-b+1 <= 0`.
    pub fn lt(a: &SymExpr, b: &SymExpr) -> Self {
        Ineq { expr: a.sub(b).offset(1), rel: Rel::LeZero }
    }

    /// Evaluates the inequality when the expression is constant.
    pub fn eval_const(&self) -> Option<bool> {
        let c = self.expr.as_constant()?;
        Some(match self.rel {
            Rel::EqZero => c == 0,
            Rel::NeZero => c != 0,
            Rel::LeZero => c <= 0,
        })
    }

    /// The logical negation. `LeZero` negates to `expr-1 >= 0`, i.e.
    /// `-(expr)+1 <= 0`.
    pub fn negate(&self) -> Ineq {
        match self.rel {
            Rel::EqZero => Ineq { expr: self.expr.clone(), rel: Rel::NeZero },
            Rel::NeZero => Ineq { expr: self.expr.clone(), rel: Rel::EqZero },
            Rel::LeZero => Ineq { expr: self.expr.scale(-1).offset(1), rel: Rel::LeZero },
        }
    }

    /// Substitutes a name.
    pub fn subst(&self, name: &str, repl: &SymExpr) -> Ineq {
        Ineq { expr: self.expr.subst(name, repl), rel: self.rel }
    }
}

impl fmt::Display for Ineq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.rel {
            Rel::EqZero => "=",
            Rel::NeZero => "<>",
            Rel::LeZero => "<=",
        };
        write!(f, "{} {op} 0", self.expr)
    }
}

/// A conjunction of inequalities.
pub type Conj = Vec<Ineq>;

/// An assertion: a disjunction of conjunctions of inequalities (§3.1).
///
/// The empty disjunction is *false*; a disjunction containing an empty
/// conjunction is *true*.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assertion {
    /// The DNF clauses.
    pub clauses: Vec<Conj>,
}

impl Assertion {
    /// The trivially true assertion.
    pub fn truth() -> Self {
        Assertion { clauses: vec![Vec::new()] }
    }

    /// The trivially false assertion.
    pub fn falsity() -> Self {
        Assertion { clauses: Vec::new() }
    }

    /// A single-inequality assertion.
    pub fn atom(i: Ineq) -> Self {
        Assertion { clauses: vec![vec![i]] }
    }

    /// True when this assertion is the constant *true*.
    pub fn is_truth(&self) -> bool {
        self.clauses.iter().any(|c| c.is_empty())
    }

    /// True when this assertion is the constant *false*.
    pub fn is_falsity(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Conjunction (distributes over the DNF clauses).
    pub fn and(&self, other: &Assertion) -> Assertion {
        let mut clauses = Vec::new();
        for a in &self.clauses {
            for b in &other.clauses {
                let mut c = a.clone();
                c.extend(b.iter().cloned());
                if !conj_contradictory(&c) {
                    clauses.push(c);
                }
            }
        }
        Assertion { clauses }.simplified()
    }

    /// Disjunction.
    pub fn or(&self, other: &Assertion) -> Assertion {
        let mut clauses = self.clauses.clone();
        clauses.extend(other.clauses.iter().cloned());
        Assertion { clauses }.simplified()
    }

    /// Negation. Exact for single-clause assertions; conservative
    /// (weaker, i.e. *true*) when the DNF negation would explode.
    pub fn negate(&self) -> Assertion {
        if self.is_falsity() {
            return Assertion::truth();
        }
        if self.is_truth() {
            return Assertion::falsity();
        }
        // ¬(C1 ∨ C2 ∨ …) = ¬C1 ∧ ¬C2 ∧ …; ¬(i1 ∧ i2 …) = ¬i1 ∨ ¬i2 ∨ …
        let mut acc = Assertion::truth();
        for clause in &self.clauses {
            if clause.len() > 4 {
                return Assertion::truth(); // conservative give-up
            }
            let mut neg = Assertion::falsity();
            for ineq in clause {
                neg = neg.or(&Assertion::atom(ineq.negate()));
            }
            acc = acc.and(&neg);
            if acc.clauses.len() > 16 {
                return Assertion::truth();
            }
        }
        acc
    }

    /// Proves this assertion unsatisfiable (conservative).
    pub fn contradictory(&self) -> bool {
        self.clauses.iter().all(conj_contradictory)
    }

    /// Substitutes a name throughout.
    pub fn subst(&self, name: &str, repl: &SymExpr) -> Assertion {
        Assertion {
            clauses: self
                .clauses
                .iter()
                .map(|c| c.iter().map(|i| i.subst(name, repl)).collect())
                .collect(),
        }
        .simplified()
    }

    fn simplified(mut self) -> Assertion {
        for clause in &mut self.clauses {
            clause.retain(|i| i.eval_const() != Some(true));
            clause.dedup();
        }
        self.clauses.retain(|c| !conj_contradictory(c));
        if self.clauses.iter().any(|c| c.is_empty()) {
            return Assertion::truth();
        }
        self.clauses.dedup();
        self
    }
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_truth() {
            return write!(f, "true");
        }
        if self.is_falsity() {
            return write!(f, "false");
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            write!(f, "(")?;
            for (j, ineq) in clause.iter().enumerate() {
                if j > 0 {
                    write!(f, " and ")?;
                }
                write!(f, "{ineq}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Conservative contradiction test for a conjunction.
fn conj_contradictory(c: &Conj) -> bool {
    for (k, i) in c.iter().enumerate() {
        if i.eval_const() == Some(false) {
            return true;
        }
        for j in &c[k + 1..] {
            // e = 0 together with e <> 0.
            if i.expr == j.expr {
                let pair = (i.rel, j.rel);
                if matches!(pair, (Rel::EqZero, Rel::NeZero) | (Rel::NeZero, Rel::EqZero)) {
                    return true;
                }
            }
            // a = 0 and b = 0 with a - b a non-zero constant.
            if i.rel == Rel::EqZero && j.rel == Rel::EqZero {
                if let Some(d) = i.expr.sub(&j.expr).as_constant() {
                    if d != 0 {
                        return true;
                    }
                }
            }
            // a <= 0 and b <= 0 with a + b a positive constant.
            if i.rel == Rel::LeZero && j.rel == Rel::LeZero {
                if let Some(s) = i.expr.add(&j.expr).as_constant() {
                    if s > 0 {
                        return true;
                    }
                }
            }
            // e = 0 and f <= 0 where f - k*e is a positive constant
            // (just check f + e and f - e quickly).
            if i.rel == Rel::EqZero && j.rel == Rel::LeZero {
                for probe in [j.expr.sub(&i.expr), j.expr.add(&i.expr)] {
                    if let Some(cst) = probe.as_constant() {
                        if cst > 0 {
                            return true;
                        }
                    }
                }
            }
            if j.rel == Rel::EqZero && i.rel == Rel::LeZero {
                for probe in [i.expr.sub(&j.expr), i.expr.add(&j.expr)] {
                    if let Some(cst) = probe.as_constant() {
                        if cst > 0 {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n() -> SymExpr {
        SymExpr::name("n")
    }

    #[test]
    fn add_and_cancel() {
        let e = n().add(&n().scale(-1));
        assert_eq!(e, SymExpr::constant(0));
    }

    #[test]
    fn display_formats() {
        let e = SymExpr::from_terms([("a".into(), 2), ("b".into(), -1)], 3);
        assert_eq!(e.to_string(), "2*a - b + 3");
        assert_eq!(SymExpr::constant(0).to_string(), "0");
    }

    #[test]
    fn subst_linear() {
        // 2*i + 1 with i := n - 1  →  2*n - 1
        let e = SymExpr::name("i").scale(2).offset(1);
        let r = e.subst("i", &n().offset(-1));
        assert_eq!(r, n().scale(2).offset(-1));
    }

    #[test]
    fn compare_constant_difference() {
        let a = n().offset(1);
        let b = n().offset(3);
        assert_eq!(a.lt(&b), Some(true));
        assert_eq!(b.le(&a), Some(false));
        // n vs m: unknown.
        assert_eq!(n().lt(&SymExpr::name("m")), None);
    }

    #[test]
    fn mul_requires_constant_side() {
        assert_eq!(n().mul(&SymExpr::constant(3)), Some(n().scale(3)));
        assert_eq!(n().mul(&SymExpr::name("m")), None);
    }

    #[test]
    fn range_disjointness_constant() {
        let a = SymRange::constant(1, 5);
        let b = SymRange::constant(6, 9);
        assert!(a.disjoint(&b));
        let c = SymRange::constant(5, 7);
        assert!(!a.disjoint(&c));
    }

    #[test]
    fn range_disjointness_symbolic() {
        // 1..a-1 vs a..a (point) are disjoint.
        let a_expr = SymExpr::name("a");
        let r1 = SymRange::new(SymExpr::constant(1), a_expr.offset(-1));
        let point = SymRange::point(a_expr.clone());
        assert!(r1.disjoint(&point));
        // a+1..n vs a..a disjoint.
        let r2 = SymRange::new(a_expr.offset(1), SymExpr::name("n"));
        assert!(r2.disjoint(&point));
        // 1..n vs a..a unknown → not disjoint.
        let whole = SymRange::new(SymExpr::constant(1), SymExpr::name("n"));
        assert!(!whole.disjoint(&point));
    }

    #[test]
    fn point_ranges_with_known_difference() {
        let p1 = SymRange::point(SymExpr::name("i"));
        let p2 = SymRange::point(SymExpr::name("i").offset(-1));
        assert!(p1.disjoint(&p2), "iteration i vs i-1 write sets");
        let p3 = SymRange::point(SymExpr::name("i"));
        assert!(!p1.disjoint(&p3));
    }

    #[test]
    fn empty_range_disjoint_from_all() {
        let empty = SymRange::constant(5, 2);
        assert_eq!(empty.is_empty(), Some(true));
        assert!(empty.disjoint(&SymRange::constant(1, 10)));
    }

    #[test]
    fn contains_range_symbolic() {
        let whole = SymRange::new(SymExpr::constant(1), n());
        let sub = SymRange::new(SymExpr::constant(2), n().offset(-1));
        assert!(whole.contains_range(&sub));
        assert!(!sub.contains_range(&whole));
    }

    #[test]
    fn skip_congruence_disjoint() {
        let evens = SymRange { start: SymExpr::constant(0), end: SymExpr::constant(100), skip: 2 };
        let odds = SymRange { start: SymExpr::constant(1), end: SymExpr::constant(101), skip: 2 };
        assert!(evens.disjoint(&odds));
    }

    #[test]
    fn ineq_negation() {
        let i = Ineq::le(&n(), &SymExpr::constant(5)); // n - 5 <= 0
        let neg = i.negate(); // 5 - n + 1 <= 0  ⇔  n >= 6
        assert_eq!(neg.rel, Rel::LeZero);
        assert_eq!(neg.expr, n().scale(-1).offset(6));
    }

    #[test]
    fn assertion_and_or() {
        let a = Assertion::atom(Ineq::eq(&n(), &SymExpr::constant(1)));
        let b = Assertion::atom(Ineq::eq(&n(), &SymExpr::constant(2)));
        let both = a.and(&b);
        assert!(both.contradictory(), "n=1 and n=2 is unsatisfiable");
        let either = a.or(&b);
        assert_eq!(either.clauses.len(), 2);
        assert!(!either.contradictory());
    }

    #[test]
    fn assertion_negation_roundtrip() {
        let a = Assertion::atom(Ineq::ne(&SymExpr::name("m"), &SymExpr::constant(0)));
        let na = a.negate();
        assert!(a.and(&na).contradictory());
    }

    #[test]
    fn truth_falsity_laws() {
        let t = Assertion::truth();
        let f = Assertion::falsity();
        let a = Assertion::atom(Ineq::le(&n(), &SymExpr::constant(0)));
        assert_eq!(t.and(&a), a);
        assert!(f.and(&a).is_falsity());
        assert!(t.or(&a).is_truth());
        assert_eq!(f.or(&a), a);
    }

    #[test]
    fn contradiction_via_le_pair() {
        // n <= 0 and n >= 1 (as -n+1 <= 0).
        let c = vec![
            Ineq::le(&n(), &SymExpr::constant(0)),
            Ineq { expr: n().scale(-1).offset(1), rel: Rel::LeZero },
        ];
        assert!(conj_contradictory(&c));
    }

    #[test]
    fn eq_and_le_contradiction() {
        // i - a = 0  together with  a - i + 1 <= 0 (i.e. i >= a + 1).
        let i = SymExpr::name("i");
        let a = SymExpr::name("a");
        let c = vec![Ineq::eq(&i, &a), Ineq::lt(&a, &i).negate().negate()];
        // lt(a, i): a - i + 1 <= 0; double negation is identity here.
        assert!(conj_contradictory(&c));
    }

    #[test]
    fn display_assertion() {
        let a = Assertion::atom(Ineq::ne(&SymExpr::name("mask"), &SymExpr::constant(0)));
        assert_eq!(a.to_string(), "(mask <> 0)");
        assert_eq!(Assertion::truth().to_string(), "true");
    }

    #[test]
    fn sym_value_to_range() {
        let v = SymValue::Expr(n());
        let r = v.to_range().unwrap();
        assert!(r.is_point());
        assert_eq!(SymValue::Unknown.to_range(), None);
    }

    #[test]
    fn range_len_const() {
        assert_eq!(SymRange::constant(1, 10).len_const(), Some(10));
        let stepped = SymRange { start: SymExpr::constant(1), end: SymExpr::constant(9), skip: 2 };
        assert_eq!(stepped.len_const(), Some(5));
    }
}
