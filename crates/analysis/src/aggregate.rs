//! Aggregate propagation (step 4 of the paper's analysis).
//!
//! "The compiler generates temporary SSA names for values that are
//! assigned through aggregates. For example, if a value V is assigned to
//! `A[i]` and then `A[i]` is assigned to a scalar, the compiler creates an
//! SSA name for V."
//!
//! Here that means forwarding: within a block (and along unconditional
//! fall-through), a read of `A[e]` that provably matches the most recent
//! write `A[e] = V` is replaced by `V`'s value, eliminating the memory
//! round-trip so value propagation can see through the aggregate. Writes
//! to the same array at a *different or unprovable* index, and any call,
//! invalidate the remembered element.

use crate::cfg::{Cfg, SimpleStmt};
use orchestra_lang::ast::{Expr, LValue};
use orchestra_lang::pretty::expr_to_string;
use std::collections::HashMap;

/// Runs aggregate forwarding over every block of a CFG.
///
/// Returns the number of forwarded reads. The rewrite is purely local to
/// basic blocks, which keeps it trivially sound in the presence of loops.
pub fn forward_aggregates(cfg: &mut Cfg) -> usize {
    let mut total = 0;
    for b in &mut cfg.blocks {
        total += forward_block(&mut b.stmts);
    }
    total
}

/// Key identifying an array element by the printed form of its indices.
/// Printing gives structural equality for the SSA-renamed index
/// expressions (same SSA names ⇒ same value).
fn elem_key(array: &str, idx: &[Expr]) -> String {
    let parts: Vec<String> = idx.iter().map(expr_to_string).collect();
    format!("{array}[{}]", parts.join(","))
}

fn forward_block(stmts: &mut [SimpleStmt]) -> usize {
    // Map element key → forwarded value expression.
    let mut known: HashMap<String, Expr> = HashMap::new();
    // Which array each key belongs to, for invalidation.
    let mut by_array: HashMap<String, Vec<String>> = HashMap::new();
    let mut forwarded = 0;

    for s in stmts.iter_mut() {
        match s {
            SimpleStmt::Assign { target, value } => {
                // Rewrite reads in the value first.
                let mut v = value.clone();
                forwarded += rewrite_reads(&mut v, &known);
                *value = v;
                match target {
                    LValue::Var(name) => {
                        // A scalar def invalidates keys whose index
                        // expressions mention it — but in SSA form scalar
                        // names are single-assignment, so nothing to do
                        // unless the name is reused (non-SSA input).
                        let name = name.clone();
                        known.retain(|k, val| !k.contains(&name) && !expr_mentions(val, &name));
                    }
                    LValue::Index(array, idx) => {
                        let mut new_idx = idx.clone();
                        for e in &mut new_idx {
                            forwarded += rewrite_reads(e, &known);
                        }
                        *idx = new_idx;
                        // Invalidate every remembered element of this
                        // array (a write may touch any of them), then
                        // remember this one.
                        if let Some(keys) = by_array.remove(array.as_str()) {
                            for k in keys {
                                known.remove(&k);
                            }
                        }
                        // Only forward side-effect-free values.
                        if is_pure(value) {
                            let key = elem_key(array, idx);
                            known.insert(key.clone(), value.clone());
                            by_array.entry(array.clone()).or_default().push(key);
                        }
                    }
                }
            }
            SimpleStmt::Call { args, .. } => {
                for a in args.iter_mut() {
                    forwarded += rewrite_reads(a, &known);
                }
                // Calls may write any array argument.
                known.clear();
                by_array.clear();
            }
        }
    }
    forwarded
}

fn expr_mentions(e: &Expr, name: &str) -> bool {
    let mut found = false;
    walk(e, &mut |x| {
        if let Expr::Var(v) = x {
            if v == name {
                found = true;
            }
        }
    });
    found
}

fn walk<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Bin(_, l, r) => {
            walk(l, f);
            walk(r, f);
        }
        Expr::Un(_, i) => walk(i, f),
        Expr::Index(_, idx) => {
            for i in idx {
                walk(i, f);
            }
        }
        Expr::Call(_, args) => {
            for a in args {
                walk(a, f);
            }
        }
        _ => {}
    }
}

fn is_pure(e: &Expr) -> bool {
    match e {
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) => true,
        Expr::Index(_, idx) => idx.iter().all(is_pure),
        Expr::Bin(_, l, r) => is_pure(l) && is_pure(r),
        Expr::Un(_, i) => is_pure(i),
        // Intrinsics are pure in MF, but forwarding a call would
        // duplicate its cost; skip.
        Expr::Call(_, _) => false,
    }
}

fn rewrite_reads(e: &mut Expr, known: &HashMap<String, Expr>) -> usize {
    match e {
        Expr::Index(array, idx) => {
            let mut n = 0;
            for i in idx.iter_mut() {
                n += rewrite_reads(i, known);
            }
            let key = elem_key(array, idx);
            if let Some(v) = known.get(&key) {
                *e = v.clone();
                n + 1
            } else {
                n
            }
        }
        Expr::Bin(_, l, r) => rewrite_reads(l, known) + rewrite_reads(r, known),
        Expr::Un(_, i) => rewrite_reads(i, known),
        Expr::Call(_, args) => args.iter_mut().map(|a| rewrite_reads(a, known)).sum(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::parse_program;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse_program(src).unwrap();
        Cfg::from_stmts(&p.body)
    }

    #[test]
    fn forwards_matching_read() {
        let mut cfg = cfg_of(
            "program p\n integer n = 4, v, w\n integer a[1..n]\n a[2] = v + 1\n w = a[2]\nend",
        );
        let n = forward_aggregates(&mut cfg);
        assert_eq!(n, 1);
        let SimpleStmt::Assign { value, .. } = &cfg.blocks[0].stmts[1] else { panic!() };
        assert_eq!(expr_to_string(value), "v + 1");
    }

    #[test]
    fn different_index_not_forwarded() {
        let mut cfg =
            cfg_of("program p\n integer n = 4, v, w\n integer a[1..n]\n a[2] = v\n w = a[3]\nend");
        assert_eq!(forward_aggregates(&mut cfg), 0);
    }

    #[test]
    fn intervening_write_invalidates() {
        let mut cfg = cfg_of(
            "program p\n integer n = 4, v, w, k\n integer a[1..n]\n a[2] = v\n a[k] = 9\n w = a[2]\nend",
        );
        assert_eq!(forward_aggregates(&mut cfg), 0, "a[k] may overwrite a[2]");
    }

    #[test]
    fn call_invalidates_everything() {
        let mut cfg = cfg_of(
            "program p\n integer n = 4, v, w\n integer a[1..n]\n proc q(integer a[1..n], integer n) { a[2] = 0 }\n a[2] = v\n call q(a, n)\n w = a[2]\nend",
        );
        assert_eq!(forward_aggregates(&mut cfg), 0);
    }

    #[test]
    fn same_array_reread_chain() {
        let mut cfg = cfg_of(
            "program p\n integer n = 4, v, w, u\n integer a[1..n]\n a[1] = v\n w = a[1]\n u = a[1]\nend",
        );
        assert_eq!(forward_aggregates(&mut cfg), 2);
    }

    #[test]
    fn scalar_redefinition_invalidates_dependent_keys() {
        // Non-SSA input: i changes between the write and the read.
        let mut cfg = cfg_of(
            "program p\n integer n = 4, i, w\n integer a[1..n]\n i = 1\n a[i] = 5\n i = 2\n w = a[i]\nend",
        );
        assert_eq!(forward_aggregates(&mut cfg), 0);
    }

    #[test]
    fn call_values_not_forwarded() {
        let mut cfg =
            cfg_of("program p\n integer n = 4\n float a[1..n], w\n a[1] = f(1.0)\n w = a[1]\nend");
        assert_eq!(forward_aggregates(&mut cfg), 0, "call results are not duplicated");
    }
}
