//! Value and assertion propagation (step 6 of the paper's analysis).
//!
//! Annotates every SSA name with a [`SymValue`]: either a linear symbolic
//! expression over other SSA names, a range (for loop induction
//! variables), or Unknown. Branch conditions are converted into
//! [`Assertion`]s and propagated along the CFG edges they control, so
//! each block carries the strongest disjunction of path conditions the
//! analysis can prove.

use crate::cfg::{BlockRole, SimpleStmt, Terminator};
use crate::ssa::SsaProgram;
use crate::symbolic::{ordered::OrderedF64, Assertion, Ineq, SymExpr, SymRange, SymValue};
use orchestra_lang::ast::{BinOp, Expr, LValue, UnOp};
use std::collections::HashMap;

/// Results of propagation over one SSA program.
#[derive(Debug, Clone)]
pub struct Propagation {
    /// Symbolic value per SSA name.
    pub values: HashMap<String, SymValue>,
    /// Path assertion per block (over SSA names).
    pub assertions: Vec<Assertion>,
    /// Induction ranges: header-φ SSA name → iteration range.
    pub loop_ranges: HashMap<String, SymRange>,
}

/// Runs value and assertion propagation.
pub fn propagate(ssa: &SsaProgram) -> Propagation {
    let mut values: HashMap<String, SymValue> = HashMap::new();
    let mut loop_ranges = HashMap::new();

    // Two passes in RPO: the first resolves straight-line values, the
    // second lets header φs see the back-edge increment definitions.
    let rpo = ssa.cfg.reverse_postorder();
    for pass in 0..2 {
        for &b in &rpo {
            for phi in &ssa.phis[b] {
                if values.contains_key(&phi.dest) {
                    continue;
                }
                if let Some(v) = phi_value(ssa, b, phi, &values) {
                    if let SymValue::Range(r) = &v {
                        loop_ranges.insert(phi.dest.clone(), r.clone());
                    }
                    values.insert(phi.dest.clone(), v);
                } else if pass == 1 {
                    values.insert(phi.dest.clone(), SymValue::Unknown);
                }
            }
            for s in &ssa.cfg.blocks[b].stmts {
                if let SimpleStmt::Assign { target: LValue::Var(name), value } = s {
                    if values.contains_key(name) {
                        continue;
                    }
                    let v = eval_value(value, &values);
                    values.insert(name.clone(), v);
                }
            }
        }
    }

    // Assertion propagation in RPO; back edges contribute `true`
    // (conservative) so a single forward pass suffices.
    let n = ssa.cfg.len();
    let mut assertions = vec![Assertion::falsity(); n];
    assertions[ssa.cfg.entry] = Assertion::truth();
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    for &b in &rpo {
        let base = assertions[b].clone();
        match ssa.cfg.blocks[b].term.clone() {
            Terminator::Jump(t) => {
                merge_edge(&mut assertions, b, t, &rpo_index, base.clone());
            }
            Terminator::Branch { cond, then_b, else_b } => {
                let pos = base.and(&to_assertion(&cond, true, &values));
                let neg = base.and(&to_assertion(&cond, false, &values));
                merge_edge(&mut assertions, b, then_b, &rpo_index, pos);
                merge_edge(&mut assertions, b, else_b, &rpo_index, neg);
            }
            Terminator::Exit => {}
        }
    }

    Propagation { values, assertions, loop_ranges }
}

fn merge_edge(
    assertions: &mut [Assertion],
    from: usize,
    to: usize,
    rpo_index: &[usize],
    incoming: Assertion,
) {
    // A back edge (target not later in RPO) contributes `true` so the
    // merged assertion stays conservative without a fixpoint iteration.
    let contrib = if rpo_index[to] <= rpo_index[from] { Assertion::truth() } else { incoming };
    assertions[to] = assertions[to].or(&contrib);
}

/// Recognizes a loop-header φ as an induction variable and returns its
/// range; falls back to equal-argument simplification.
fn phi_value(
    ssa: &SsaProgram,
    block: usize,
    phi: &crate::ssa::Phi,
    values: &HashMap<String, SymValue>,
) -> Option<SymValue> {
    // Induction recognition only applies to loop headers.
    let shape = ssa.cfg.loops.iter().find(|l| l.header == block && l.var == phi.var);
    if let Some(shape) = shape {
        if phi.args.len() == 2 {
            let (init_arg, step_arg) = if phi.args[0].0 == shape.preheader {
                (&phi.args[0].1, &phi.args[1].1)
            } else if phi.args[1].0 == shape.preheader {
                (&phi.args[1].1, &phi.args[0].1)
            } else {
                return equal_args_value(phi, values);
            };
            // The back-edge def must be `phi + c`.
            let step_val = find_linear_def(ssa, step_arg, values);
            if let Some(se) = step_val {
                let c = se.coeff(&phi.dest);
                let rest = se.subst(&phi.dest, &SymExpr::constant(0));
                if c == 1 {
                    if let Some(k) = rest.as_constant() {
                        if k != 0 {
                            let init = resolve_expr(init_arg, values)?;
                            // The loop bound comes from the renamed
                            // header test `phi <= hi` (or `>=`), so it is
                            // already in SSA names.
                            let Terminator::Branch { cond, .. } =
                                &ssa.cfg.blocks[shape.header].term
                            else {
                                return Some(SymValue::Unknown);
                            };
                            let Expr::Bin(op, lhs, rhs) = cond else {
                                return Some(SymValue::Unknown);
                            };
                            if !matches!(op, BinOp::Le | BinOp::Ge)
                                || **lhs != Expr::Var(phi.dest.clone())
                            {
                                return Some(SymValue::Unknown);
                            }
                            let hi = lin_expr(rhs, values)?;
                            let (start, end) = if k > 0 { (init, hi) } else { (hi, init) };
                            return Some(SymValue::Range(SymRange { start, end, skip: k.abs() }));
                        }
                    }
                }
            }
            return Some(SymValue::Unknown);
        }
    }
    equal_args_value(phi, values)
}

fn equal_args_value(phi: &crate::ssa::Phi, values: &HashMap<String, SymValue>) -> Option<SymValue> {
    let mut resolved: Vec<SymExpr> = Vec::new();
    for (_, arg) in &phi.args {
        resolved.push(resolve_expr(arg, values)?);
    }
    let first = resolved.first()?;
    if resolved.iter().all(|e| e == first) {
        Some(SymValue::Expr(first.clone()))
    } else {
        // Widen constants to a range when possible.
        let consts: Option<Vec<i64>> = resolved.iter().map(|e| e.as_constant()).collect();
        if let Some(cs) = consts {
            let lo = *cs.iter().min().expect("nonempty");
            let hi = *cs.iter().max().expect("nonempty");
            return Some(SymValue::Range(SymRange::constant(lo, hi)));
        }
        Some(SymValue::Unknown)
    }
}

/// The linear expression defining `name` (following a single assignment),
/// with known values substituted — used for induction-step recognition.
fn find_linear_def(
    ssa: &SsaProgram,
    name: &str,
    values: &HashMap<String, SymValue>,
) -> Option<SymExpr> {
    let &block = ssa.def_block.get(name)?;
    for s in &ssa.cfg.blocks[block].stmts {
        if let SimpleStmt::Assign { target: LValue::Var(t), value } = s {
            if t == name {
                return lin_expr_raw(value, values);
            }
        }
    }
    None
}

/// Resolves an SSA name to a symbolic expression: its known value, or
/// itself as an opaque term.
pub fn resolve_expr(name: &str, values: &HashMap<String, SymValue>) -> Option<SymExpr> {
    match values.get(name) {
        Some(SymValue::Expr(e)) => Some(e.clone()),
        Some(SymValue::Range(_)) | Some(SymValue::Unknown) | None => Some(SymExpr::name(name)),
        Some(SymValue::FloatConst(_)) => None,
    }
}

/// Linearizes an expression over SSA names, substituting known values.
///
/// Returns `None` when the expression is non-linear or reads memory.
pub fn lin_expr(e: &Expr, values: &HashMap<String, SymValue>) -> Option<SymExpr> {
    lin_expr_raw(e, values)
}

fn lin_expr_raw(e: &Expr, values: &HashMap<String, SymValue>) -> Option<SymExpr> {
    match e {
        Expr::IntLit(v) => Some(SymExpr::constant(*v)),
        Expr::FloatLit(_) => None,
        Expr::Var(name) => resolve_expr(name, values),
        Expr::Index(_, _) | Expr::Call(_, _) => None,
        Expr::Un(UnOp::Neg, inner) => Some(lin_expr_raw(inner, values)?.scale(-1)),
        Expr::Un(UnOp::Not, _) => None,
        Expr::Bin(op, l, r) => {
            let a = lin_expr_raw(l, values)?;
            let b = lin_expr_raw(r, values)?;
            match op {
                BinOp::Add => Some(a.add(&b)),
                BinOp::Sub => Some(a.sub(&b)),
                BinOp::Mul => a.mul(&b),
                BinOp::Div => {
                    // Exact constant division only.
                    let (x, y) = (a.as_constant()?, b.as_constant()?);
                    if y != 0 && x % y == 0 {
                        Some(SymExpr::constant(x / y))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
    }
}

/// Evaluates an expression to a symbolic value.
pub fn eval_value(e: &Expr, values: &HashMap<String, SymValue>) -> SymValue {
    if let Some(le) = lin_expr_raw(e, values) {
        return SymValue::Expr(le);
    }
    if let Expr::FloatLit(v) = e {
        return SymValue::FloatConst(OrderedF64(*v));
    }
    SymValue::Unknown
}

/// Converts a branch condition into an assertion.
///
/// `positive` selects the taken (`true`) or fall-through (`false`)
/// direction. Conditions the analysis cannot express (array reads,
/// calls, non-linear arithmetic) become the trivially-true assertion.
pub fn to_assertion(cond: &Expr, positive: bool, values: &HashMap<String, SymValue>) -> Assertion {
    match cond {
        Expr::Bin(op, l, r) if op.is_comparison() => {
            let (Some(a), Some(b)) = (lin_expr_raw(l, values), lin_expr_raw(r, values)) else {
                return Assertion::truth();
            };
            let eff_op = if positive { *op } else { op.negate().expect("comparisons negate") };
            Assertion::atom(match eff_op {
                BinOp::Eq => Ineq::eq(&a, &b),
                BinOp::Ne => Ineq::ne(&a, &b),
                BinOp::Lt => Ineq::lt(&a, &b),
                BinOp::Le => Ineq::le(&a, &b),
                BinOp::Gt => Ineq::lt(&b, &a),
                BinOp::Ge => Ineq::le(&b, &a),
                _ => unreachable!("comparison expected"),
            })
        }
        Expr::Bin(BinOp::And, l, r) => {
            if positive {
                to_assertion(l, true, values).and(&to_assertion(r, true, values))
            } else {
                // ¬(l ∧ r) = ¬l ∨ ¬r — but each ¬ may be weakened to true,
                // which would make the whole disjunction true (sound).
                to_assertion(l, false, values).or(&to_assertion(r, false, values))
            }
        }
        Expr::Bin(BinOp::Or, l, r) => {
            if positive {
                to_assertion(l, true, values).or(&to_assertion(r, true, values))
            } else {
                to_assertion(l, false, values).and(&to_assertion(r, false, values))
            }
        }
        Expr::Un(UnOp::Not, inner) => to_assertion(inner, !positive, values),
        // A bare scalar `if (x)` means `x <> 0`.
        Expr::Var(_) | Expr::IntLit(_) => {
            let Some(a) = lin_expr_raw(cond, values) else {
                return Assertion::truth();
            };
            let zero = SymExpr::constant(0);
            Assertion::atom(if positive { Ineq::ne(&a, &zero) } else { Ineq::eq(&a, &zero) })
        }
        _ => Assertion::truth(),
    }
}

/// Finds the block role, for tests and diagnostics.
pub fn role_of(ssa: &SsaProgram, b: usize) -> BlockRole {
    ssa.cfg.blocks[b].role
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::ssa::to_ssa;
    use orchestra_lang::parse_program;
    use std::collections::BTreeSet;

    fn analyzed(src: &str) -> (SsaProgram, Propagation) {
        let p = parse_program(src).unwrap();
        let mut scalars: BTreeSet<String> =
            p.decls.iter().filter(|d| !d.is_array()).map(|d| d.name.clone()).collect();
        fn ivs(stmts: &[orchestra_lang::ast::Stmt], out: &mut BTreeSet<String>) {
            for s in stmts {
                match s {
                    orchestra_lang::ast::Stmt::Do { var, body, .. } => {
                        out.insert(var.clone());
                        ivs(body, out);
                    }
                    orchestra_lang::ast::Stmt::If { then_body, else_body, .. } => {
                        ivs(then_body, out);
                        ivs(else_body, out);
                    }
                    _ => {}
                }
            }
        }
        ivs(&p.body, &mut scalars);
        let ssa = to_ssa(&Cfg::from_program(&p), &scalars);
        let prop = propagate(&ssa);
        (ssa, prop)
    }

    #[test]
    fn constants_fold_through_chains() {
        let (_, prop) =
            analyzed("program p\n integer a, b, c\n a = 2\n b = a + 3\n c = b * 2\nend");
        assert_eq!(prop.values["a#1"], SymValue::int(2));
        assert_eq!(prop.values["b#1"], SymValue::int(5));
        assert_eq!(prop.values["c#1"], SymValue::int(10));
    }

    #[test]
    fn induction_variable_gets_range() {
        let (ssa, prop) = analyzed(
            "program p\n integer n = 10\n integer x[1..n]\n do i = 1, n { x[i] = i }\nend",
        );
        let header = ssa.cfg.loops[0].header;
        let phi = ssa.phis[header].iter().find(|p| p.var == "i").unwrap();
        let SymValue::Range(r) = &prop.values[&phi.dest] else {
            panic!("expected range, got {:?}", prop.values[&phi.dest])
        };
        assert_eq!(r.start, SymExpr::constant(1));
        assert_eq!(r.end, SymExpr::constant(10), "n folds to 10");
        assert_eq!(r.skip, 1);
        assert!(prop.loop_ranges.contains_key(&phi.dest));
    }

    #[test]
    fn symbolic_upper_bound_stays_symbolic() {
        let (ssa, prop) =
            analyzed("program p\n integer n\n integer x[1..100]\n do i = 1, n { x[i] = i }\nend");
        let header = ssa.cfg.loops[0].header;
        let phi = ssa.phis[header].iter().find(|p| p.var == "i").unwrap();
        let SymValue::Range(r) = &prop.values[&phi.dest] else { panic!() };
        assert_eq!(r.end, SymExpr::name("n#0"), "uninitialized n stays opaque");
    }

    #[test]
    fn stepped_loop_records_skip() {
        let (ssa, prop) = analyzed(
            "program p\n integer n = 9\n integer x[1..n]\n do i = 1, n, 2 { x[i] = i }\nend",
        );
        let header = ssa.cfg.loops[0].header;
        let phi = ssa.phis[header].iter().find(|p| p.var == "i").unwrap();
        let SymValue::Range(r) = &prop.values[&phi.dest] else { panic!() };
        assert_eq!(r.skip, 2);
    }

    #[test]
    fn branch_assertions_flow_to_arms() {
        let (ssa, prop) =
            analyzed("program p\n integer a, b\n if (a = 0) { b = 1 } else { b = 2 }\nend");
        let Terminator::Branch { then_b, else_b, .. } = ssa.cfg.blocks[0].term.clone() else {
            panic!()
        };
        let then_assert = &prop.assertions[then_b];
        let else_assert = &prop.assertions[else_b];
        assert!(!then_assert.is_truth());
        assert!(!else_assert.is_truth());
        // The two are mutually exclusive.
        assert!(then_assert.and(else_assert).contradictory());
    }

    #[test]
    fn mask_branch_over_array_becomes_truth() {
        let (ssa, prop) = analyzed(
            "program p\n integer n = 4\n integer m[1..n], x[1..n]\n do i = 1, n where (m[i] <> 0) { x[i] = 1 }\nend",
        );
        // The mask-test block's outgoing assertions are `true` (the
        // analysis cannot express array-element predicates; those are
        // handled structurally by the descriptor layer).
        let mask_block = ssa.cfg.blocks.iter().position(|b| b.role == BlockRole::MaskTest).unwrap();
        let Terminator::Branch { then_b, .. } = ssa.cfg.blocks[mask_block].term.clone() else {
            panic!()
        };
        // Body assertion includes the loop bound test from the header but
        // nothing about m[i].
        assert!(!prop.assertions[then_b].is_falsity());
    }

    #[test]
    fn loop_body_knows_bounds() {
        let (ssa, prop) = analyzed(
            "program p\n integer n = 10\n integer x[1..n]\n do i = 1, n { x[i] = i }\nend",
        );
        let header = ssa.cfg.loops[0].header;
        let Terminator::Branch { then_b, .. } = ssa.cfg.blocks[header].term.clone() else {
            panic!()
        };
        // body assertion: i#phi <= 10 (i.e. i - 10 <= 0)
        let a = &prop.assertions[then_b];
        assert!(!a.is_truth());
        assert!(!a.is_falsity());
    }

    #[test]
    fn unknown_for_nonlinear() {
        let (_, prop) = analyzed("program p\n integer a, b\n b = a * a\nend");
        assert_eq!(prop.values["b#1"], SymValue::Unknown);
    }

    #[test]
    fn float_constants_tracked() {
        let (_, prop) = analyzed("program p\n float x\n x = 2.5\nend");
        assert_eq!(prop.values["x#1"], SymValue::FloatConst(OrderedF64(2.5)));
    }

    #[test]
    fn to_assertion_negates_correctly() {
        let values = HashMap::new();
        let cond = Expr::bin(BinOp::Lt, Expr::var("x"), Expr::IntLit(5));
        let pos = to_assertion(&cond, true, &values);
        let neg = to_assertion(&cond, false, &values);
        assert!(pos.and(&neg).contradictory());
    }
}
