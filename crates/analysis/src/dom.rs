//! Dominator tree and dominance frontiers.
//!
//! Implements Cooper, Harvey & Kennedy's "A Simple, Fast Dominance
//! Algorithm". Dominance frontiers drive φ-placement in the SSA pass
//! (the paper cites Cytron et al. \[6\] for SSA construction).

use crate::cfg::{BlockId, Cfg};

/// Dominator information for a CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block; `idom[entry] == entry`.
    /// Unreachable blocks carry `usize::MAX`.
    pub idom: Vec<BlockId>,
    /// Dominance frontier per block.
    pub frontier: Vec<Vec<BlockId>>,
    /// Children in the dominator tree.
    pub children: Vec<Vec<BlockId>>,
    rpo_index: Vec<usize>,
}

/// Sentinel for unreachable blocks.
pub const UNREACHABLE: usize = usize::MAX;

impl DomTree {
    /// Computes dominators and frontiers for `cfg`.
    pub fn compute(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        let rpo = cfg.reverse_postorder();
        let mut rpo_index = vec![UNREACHABLE; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }

        let mut idom = vec![UNREACHABLE; n];
        idom[cfg.entry] = cfg.entry;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom = UNREACHABLE;
                for &p in &cfg.blocks[b].preds {
                    if idom[p] == UNREACHABLE {
                        continue;
                    }
                    new_idom = if new_idom == UNREACHABLE {
                        p
                    } else {
                        intersect(&idom, &rpo_index, p, new_idom)
                    };
                }
                if new_idom != UNREACHABLE && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        // Dominance frontiers (Cooper et al. §4).
        let mut frontier = vec![Vec::new(); n];
        for b in 0..n {
            if cfg.blocks[b].preds.len() >= 2 {
                for &p in &cfg.blocks[b].preds {
                    if idom[p] == UNREACHABLE || idom[b] == UNREACHABLE {
                        continue;
                    }
                    let mut runner = p;
                    while runner != idom[b] {
                        if !frontier[runner].contains(&b) {
                            frontier[runner].push(b);
                        }
                        if runner == idom[runner] {
                            break; // reached entry
                        }
                        runner = idom[runner];
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for b in 0..n {
            if b != cfg.entry && idom[b] != UNREACHABLE {
                children[idom[b]].push(b);
            }
        }

        DomTree { idom, frontier, children, rpo_index }
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b] == UNREACHABLE {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let up = self.idom[cur];
            if up == cur {
                return false;
            }
            cur = up;
        }
    }

    /// Pre-order walk of the dominator tree starting at `root`.
    pub fn preorder(&self, root: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(b) = stack.pop() {
            out.push(b);
            for &c in self.children[b].iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// RPO index of a block (`UNREACHABLE` for unreachable blocks).
    pub fn rpo_index(&self, b: BlockId) -> usize {
        self.rpo_index[b]
    }
}

fn intersect(idom: &[BlockId], rpo_index: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a];
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::parse_program;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse_program(src).unwrap();
        Cfg::from_stmts(&p.body)
    }

    #[test]
    fn diamond_dominators() {
        let cfg =
            cfg_of("program p\n integer a, b\n if (a = 0) { b = 1 } else { b = 2 }\n a = 3\nend");
        let dom = DomTree::compute(&cfg);
        // Entry dominates everything.
        for b in 0..cfg.len() {
            assert!(dom.dominates(cfg.entry, b), "entry must dominate B{b}");
        }
        // Join block's idom is the entry (branch block).
        let crate::cfg::Terminator::Branch { then_b, else_b, .. } = &cfg.blocks[0].term else {
            panic!()
        };
        let join = cfg.blocks[*then_b].term.successors()[0];
        assert_eq!(dom.idom[join], cfg.entry);
        // Arms do not dominate the join.
        assert!(!dom.dominates(*then_b, join));
        assert!(!dom.dominates(*else_b, join));
    }

    #[test]
    fn join_in_frontier_of_both_arms() {
        let cfg =
            cfg_of("program p\n integer a, b\n if (a = 0) { b = 1 } else { b = 2 }\n a = 3\nend");
        let dom = DomTree::compute(&cfg);
        let crate::cfg::Terminator::Branch { then_b, else_b, .. } = &cfg.blocks[0].term else {
            panic!()
        };
        let join = cfg.blocks[*then_b].term.successors()[0];
        assert!(dom.frontier[*then_b].contains(&join));
        assert!(dom.frontier[*else_b].contains(&join));
        assert!(!dom.frontier[cfg.entry].contains(&join));
    }

    #[test]
    fn loop_header_in_own_frontier() {
        let cfg =
            cfg_of("program p\n integer n = 3\n integer x[1..n]\n do i = 1, n { x[i] = i }\nend");
        let dom = DomTree::compute(&cfg);
        let header = cfg.loops[0].header;
        // The header has a back edge into itself, so it appears in its
        // own dominance frontier — the classic reason loop-carried scalars
        // need φ nodes in the header.
        assert!(dom.frontier[header].contains(&header));
    }

    #[test]
    fn header_dominates_body_and_exit() {
        let cfg =
            cfg_of("program p\n integer n = 3\n integer x[1..n]\n do i = 1, n { x[i] = i }\nend");
        let dom = DomTree::compute(&cfg);
        let l = &cfg.loops[0];
        assert!(dom.dominates(l.header, l.increment));
        assert!(dom.dominates(l.header, l.exit));
        assert!(!dom.dominates(l.increment, l.exit));
    }

    #[test]
    fn preorder_covers_tree() {
        let cfg = cfg_of(
            "program p\n integer n = 3, s\n do i = 1, n { if (i = 2) { s = s + 1 } else { s = s + 2 } }\nend",
        );
        let dom = DomTree::compute(&cfg);
        let order = dom.preorder(cfg.entry);
        assert_eq!(order.len(), cfg.len());
        assert_eq!(order[0], cfg.entry);
    }
}
