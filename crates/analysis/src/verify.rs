//! SSA well-formedness verification.
//!
//! Checks the invariants the rest of the pipeline relies on:
//!
//! 1. **single assignment** — every SSA name is defined exactly once
//!    (by a φ or an assignment);
//! 2. **dominance** — every use of a name is dominated by its
//!    definition (uses in φ arguments are checked against the
//!    corresponding predecessor block);
//! 3. **φ shape** — each φ has exactly one argument per predecessor of
//!    its block.
//!
//! Used by tests and available as a debugging aid for pass authors.

use crate::cfg::{SimpleStmt, Terminator};
use crate::ssa::{split_ssa_name, SsaProgram};
use orchestra_lang::ast::{Expr, LValue};
use std::collections::{BTreeSet, HashMap};

/// A violation of the SSA invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsaViolation {
    /// A name is assigned more than once.
    MultipleDefinitions {
        /// The offending SSA name.
        name: String,
    },
    /// A use is not dominated by its definition.
    UseNotDominated {
        /// The offending SSA name.
        name: String,
        /// The block containing the use.
        use_block: usize,
    },
    /// A φ's argument count differs from its block's predecessor count.
    PhiArityMismatch {
        /// The φ's destination name.
        dest: String,
        /// Block holding the φ.
        block: usize,
    },
    /// A φ argument names a block that is not a predecessor.
    PhiBadPredecessor {
        /// The φ's destination name.
        dest: String,
        /// The claimed predecessor.
        pred: usize,
    },
}

impl std::fmt::Display for SsaViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsaViolation::MultipleDefinitions { name } => {
                write!(f, "`{name}` defined more than once")
            }
            SsaViolation::UseNotDominated { name, use_block } => {
                write!(f, "use of `{name}` in B{use_block} not dominated by its definition")
            }
            SsaViolation::PhiArityMismatch { dest, block } => {
                write!(f, "φ `{dest}` in B{block} has wrong arity")
            }
            SsaViolation::PhiBadPredecessor { dest, pred } => {
                write!(f, "φ `{dest}` names non-predecessor B{pred}")
            }
        }
    }
}

/// Verifies all SSA invariants; returns every violation found.
pub fn verify_ssa(ssa: &SsaProgram) -> Vec<SsaViolation> {
    let mut violations = Vec::new();
    let mut def_block: HashMap<&str, usize> = HashMap::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();

    // Pass 1: collect definitions, flag duplicates. (Version-0 names
    // are implicit entry definitions and handled in the dominance
    // check directly.)
    for (bi, block) in ssa.cfg.blocks.iter().enumerate() {
        for phi in &ssa.phis[bi] {
            if !seen.insert(&phi.dest) {
                violations.push(SsaViolation::MultipleDefinitions { name: phi.dest.clone() });
            }
            def_block.insert(&phi.dest, bi);
        }
        for s in &block.stmts {
            if let SimpleStmt::Assign { target: LValue::Var(name), .. } = s {
                if split_ssa_name(name).is_some() {
                    if !seen.insert(name) {
                        violations.push(SsaViolation::MultipleDefinitions { name: name.clone() });
                    }
                    def_block.insert(name, bi);
                }
            }
        }
    }

    // Pass 2: φ shape.
    for (bi, phis) in ssa.phis.iter().enumerate() {
        let preds = &ssa.cfg.blocks[bi].preds;
        for phi in phis {
            if phi.args.len() != preds.len() {
                violations
                    .push(SsaViolation::PhiArityMismatch { dest: phi.dest.clone(), block: bi });
            }
            for (pred, _) in &phi.args {
                if !preds.contains(pred) {
                    violations.push(SsaViolation::PhiBadPredecessor {
                        dest: phi.dest.clone(),
                        pred: *pred,
                    });
                }
            }
        }
    }

    // Pass 3: dominance of uses. Version-0 names are entry-defined.
    let dominated = |name: &str, use_block: usize| -> bool {
        if let Some((_, 0)) = split_ssa_name(name) {
            return true; // implicit entry definition dominates everything
        }
        match def_block.get(name) {
            Some(&db) => ssa.dom.dominates(db, use_block),
            None => false,
        }
    };
    let check_expr = |e: &Expr, bi: usize, violations: &mut Vec<SsaViolation>| {
        collect_ssa_uses(e, &mut |name| {
            if !dominated(name, bi) {
                violations
                    .push(SsaViolation::UseNotDominated { name: name.to_string(), use_block: bi });
            }
        });
    };
    for (bi, block) in ssa.cfg.blocks.iter().enumerate() {
        for s in &block.stmts {
            match s {
                SimpleStmt::Assign { target, value } => {
                    if let LValue::Index(_, idx) = target {
                        for e in idx {
                            check_expr(e, bi, &mut violations);
                        }
                    }
                    check_expr(value, bi, &mut violations);
                }
                SimpleStmt::Call { args, .. } => {
                    for a in args {
                        check_expr(a, bi, &mut violations);
                    }
                }
            }
        }
        if let Terminator::Branch { cond, .. } = &block.term {
            check_expr(cond, bi, &mut violations);
        }
        // φ arguments must be dominated at the *predecessor* end.
        for s in ssa.cfg.blocks[bi].term.successors() {
            for phi in &ssa.phis[s] {
                for (pred, arg) in &phi.args {
                    if *pred == bi && !dominated(arg, bi) {
                        violations.push(SsaViolation::UseNotDominated {
                            name: arg.clone(),
                            use_block: bi,
                        });
                    }
                }
            }
        }
    }
    violations
}

fn collect_ssa_uses<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a str)) {
    match e {
        Expr::Var(v) if split_ssa_name(v).is_some() => {
            f(v);
        }
        Expr::Index(_, idx) => {
            for i in idx {
                collect_ssa_uses(i, f);
            }
        }
        Expr::Bin(_, l, r) => {
            collect_ssa_uses(l, f);
            collect_ssa_uses(r, f);
        }
        Expr::Un(_, i) => collect_ssa_uses(i, f),
        Expr::Call(_, args) => {
            for a in args {
                collect_ssa_uses(a, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::collect_scalars;
    use crate::ssa::to_ssa;
    use orchestra_lang::parse_program;

    fn ssa_of(src: &str) -> SsaProgram {
        let p = parse_program(src).unwrap();
        let scalars = collect_scalars(&p);
        to_ssa(&Cfg::from_program(&p), &scalars)
    }

    #[test]
    fn straight_line_is_well_formed() {
        let ssa = ssa_of("program t\n integer a, b\n a = 1\n b = a + 1\nend");
        assert!(verify_ssa(&ssa).is_empty());
    }

    #[test]
    fn loops_and_branches_are_well_formed() {
        let ssa = ssa_of(
            "program t\n integer n = 6, s\n integer x[1..n]\n do i = 1, n { if (i = 3) { s = s + 1 } else { s = s + 2 }\n x[i] = s }\nend",
        );
        assert_eq!(verify_ssa(&ssa), vec![]);
    }

    #[test]
    fn figure1_is_well_formed() {
        let p = orchestra_lang::builder::figure1_program(8);
        let scalars = collect_scalars(&p);
        let ssa = to_ssa(&Cfg::from_program(&p), &scalars);
        assert_eq!(verify_ssa(&ssa), vec![]);
    }

    #[test]
    fn detects_duplicate_definition() {
        let mut ssa = ssa_of("program t\n integer a\n a = 1\nend");
        // Corrupt: duplicate the defining statement.
        let stmt = ssa.cfg.blocks[0]
            .stmts
            .iter()
            .find(|s| matches!(s, SimpleStmt::Assign { target: LValue::Var(_), .. }))
            .cloned()
            .expect("assignment exists");
        ssa.cfg.blocks[0].stmts.push(stmt);
        let v = verify_ssa(&ssa);
        assert!(v.iter().any(|x| matches!(x, SsaViolation::MultipleDefinitions { .. })));
    }

    #[test]
    fn detects_phi_arity_mismatch() {
        let mut ssa =
            ssa_of("program t\n integer a, b\n if (a = 0) { b = 1 } else { b = 2 }\n a = b\nend");
        // Corrupt: drop one φ argument.
        for phis in ssa.phis.iter_mut() {
            for phi in phis.iter_mut() {
                if phi.var == "b" {
                    phi.args.pop();
                }
            }
        }
        let v = verify_ssa(&ssa);
        assert!(v.iter().any(|x| matches!(x, SsaViolation::PhiArityMismatch { .. })));
    }

    #[test]
    fn detects_use_not_dominated() {
        let mut ssa = ssa_of(
            "program t\n integer a, b, c\n if (a = 0) { b = 1 } else { b = 2 }\n c = b\nend",
        );
        // Corrupt: replace a use in the entry with a name defined in a branch.
        let branch_def = ssa
            .def_block
            .iter()
            .find(|(n, &b)| {
                b != ssa.cfg.entry && split_ssa_name(n).is_some_and(|(base, _)| base == "b")
            })
            .map(|(n, _)| n.clone())
            .expect("branch def of b exists");
        if let Terminator::Branch { cond, .. } = &mut ssa.cfg.blocks[0].term {
            *cond = Expr::Var(branch_def);
        }
        let v = verify_ssa(&ssa);
        assert!(v.iter().any(|x| matches!(x, SsaViolation::UseNotDominated { .. })));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = SsaViolation::MultipleDefinitions { name: "x#3".into() };
        assert!(v.to_string().contains("x#3"));
    }
}
