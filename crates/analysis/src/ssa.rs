//! Static single-assignment construction (step 3 of the paper's
//! analysis), after Cytron, Ferrante, Rosen, Wegman & Zadeck.
//!
//! Only *scalar* variables are renamed; arrays are memory and are handled
//! by descriptors and the aggregate-propagation pass. SSA names are
//! spelled `base#version` and stored back into the expression trees, so
//! every later pass can keep using the `orchestra-lang` `Expr` type.

use crate::cfg::{Cfg, SimpleStmt, Terminator};
use crate::dom::{DomTree, UNREACHABLE};
use orchestra_lang::ast::{Expr, LValue};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A φ node placed at a block head.
#[derive(Debug, Clone, PartialEq)]
pub struct Phi {
    /// Source variable name.
    pub var: String,
    /// SSA name defined by this φ.
    pub dest: String,
    /// One `(predecessor block, SSA name)` pair per incoming edge.
    pub args: Vec<(usize, String)>,
}

/// The result of SSA conversion.
#[derive(Debug, Clone)]
pub struct SsaProgram {
    /// The CFG with every scalar reference renamed to `base#version`.
    pub cfg: Cfg,
    /// φ nodes per block.
    pub phis: Vec<Vec<Phi>>,
    /// Dominator tree used during construction.
    pub dom: DomTree,
    /// Defining block of each SSA name (φ or assignment).
    pub def_block: HashMap<String, usize>,
    /// The scalar variables that were renamed.
    pub scalars: BTreeSet<String>,
}

/// Splits an SSA name into `(base, version)`.
///
/// Returns `None` for names that are not in SSA form.
pub fn split_ssa_name(name: &str) -> Option<(&str, u32)> {
    let (base, ver) = name.rsplit_once('#')?;
    ver.parse().ok().map(|v| (base, v))
}

/// Builds the SSA name for `(base, version)`.
pub fn ssa_name(base: &str, version: u32) -> String {
    format!("{base}#{version}")
}

/// Converts a CFG to SSA form, renaming the given scalar variables.
///
/// Any scalar used before being assigned refers to `base#0`, the
/// implicit entry definition.
pub fn to_ssa(cfg: &Cfg, scalar_names: &BTreeSet<String>) -> SsaProgram {
    let mut cfg = cfg.clone();
    cfg.compute_preds();
    let dom = DomTree::compute(&cfg);
    let n = cfg.len();

    // Blocks assigning each variable.
    let mut def_sites: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    for v in scalar_names {
        // The entry holds the implicit initial definition (version 0).
        def_sites.entry(v.clone()).or_default().insert(cfg.entry);
    }
    for (bi, b) in cfg.blocks.iter().enumerate() {
        for s in &b.stmts {
            if let SimpleStmt::Assign { target: LValue::Var(v), .. } = s {
                if scalar_names.contains(v) {
                    def_sites.entry(v.clone()).or_default().insert(bi);
                }
            }
        }
    }

    // φ insertion via iterated dominance frontiers.
    let mut phis: Vec<Vec<Phi>> = vec![Vec::new(); n];
    for (var, sites) in &def_sites {
        let mut has_phi = vec![false; n];
        let mut work: Vec<usize> = sites.iter().copied().collect();
        let mut ever: BTreeSet<usize> = sites.clone();
        while let Some(b) = work.pop() {
            if dom.idom[b] == UNREACHABLE {
                continue;
            }
            for &f in &dom.frontier[b] {
                if !has_phi[f] {
                    has_phi[f] = true;
                    phis[f].push(Phi { var: var.clone(), dest: String::new(), args: Vec::new() });
                    if ever.insert(f) {
                        work.push(f);
                    }
                }
            }
        }
    }

    // Renaming.
    let mut renamer =
        Renamer { counters: HashMap::new(), stacks: HashMap::new(), def_block: HashMap::new() };
    for v in scalar_names {
        // Version 0 is the implicit entry definition.
        renamer.counters.insert(v.clone(), 0);
        renamer.stacks.insert(v.clone(), vec![ssa_name(v, 0)]);
        renamer.def_block.insert(ssa_name(v, 0), cfg.entry);
    }
    rename_block(cfg.entry, &mut cfg, &mut phis, &dom, &mut renamer, scalar_names);

    SsaProgram { cfg, phis, dom, def_block: renamer.def_block, scalars: scalar_names.clone() }
}

struct Renamer {
    counters: HashMap<String, u32>,
    stacks: HashMap<String, Vec<String>>,
    def_block: HashMap<String, usize>,
}

impl Renamer {
    fn fresh(&mut self, var: &str, block: usize) -> String {
        let c = self.counters.entry(var.to_string()).or_insert(0);
        *c += 1;
        let name = ssa_name(var, *c);
        self.stacks.entry(var.to_string()).or_default().push(name.clone());
        self.def_block.insert(name.clone(), block);
        name
    }

    fn top(&self, var: &str) -> String {
        self.stacks.get(var).and_then(|s| s.last()).cloned().unwrap_or_else(|| ssa_name(var, 0))
    }
}

fn rename_expr(e: &Expr, r: &Renamer, scalars: &BTreeSet<String>) -> Expr {
    match e {
        Expr::IntLit(_) | Expr::FloatLit(_) => e.clone(),
        Expr::Var(v) => {
            if scalars.contains(v) {
                Expr::Var(r.top(v))
            } else {
                e.clone()
            }
        }
        Expr::Index(a, idx) => {
            Expr::Index(a.clone(), idx.iter().map(|i| rename_expr(i, r, scalars)).collect())
        }
        Expr::Bin(op, l, rr) => {
            Expr::bin(*op, rename_expr(l, r, scalars), rename_expr(rr, r, scalars))
        }
        Expr::Un(op, inner) => Expr::Un(*op, Box::new(rename_expr(inner, r, scalars))),
        Expr::Call(f, args) => {
            Expr::Call(f.clone(), args.iter().map(|a| rename_expr(a, r, scalars)).collect())
        }
    }
}

fn rename_block(
    b: usize,
    cfg: &mut Cfg,
    phis: &mut [Vec<Phi>],
    dom: &DomTree,
    r: &mut Renamer,
    scalars: &BTreeSet<String>,
) {
    let mut pushed: Vec<String> = Vec::new();

    // φ destinations first.
    for phi in &mut phis[b] {
        let dest = r.fresh(&phi.var, b);
        pushed.push(phi.var.clone());
        phi.dest = dest;
    }

    // Statements: uses are renamed with the stacks as of that point,
    // then the definition pushes a fresh version.
    let stmts = std::mem::take(&mut cfg.blocks[b].stmts);
    let mut new_stmts = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            SimpleStmt::Assign { target, value } => {
                let value = rename_expr(&value, r, scalars);
                let target = match target {
                    LValue::Var(v) if scalars.contains(&v) => {
                        let name = r.fresh(&v, b);
                        pushed.push(v);
                        LValue::Var(name)
                    }
                    LValue::Var(v) => LValue::Var(v),
                    LValue::Index(a, idx) => {
                        LValue::Index(a, idx.iter().map(|i| rename_expr(i, r, scalars)).collect())
                    }
                };
                new_stmts.push(SimpleStmt::Assign { target, value });
            }
            SimpleStmt::Call { name, args } => {
                let args = args.iter().map(|a| rename_expr(a, r, scalars)).collect();
                new_stmts.push(SimpleStmt::Call { name, args });
            }
        }
    }
    cfg.blocks[b].stmts = new_stmts;

    if let Terminator::Branch { cond, .. } = &mut cfg.blocks[b].term {
        *cond = rename_expr(&cond.clone(), r, scalars);
    }

    // Fill φ arguments in successors.
    for s in cfg.blocks[b].term.successors() {
        for phi in &mut phis[s] {
            phi.args.push((b, r.top(&phi.var)));
        }
    }

    // Recurse into dominator-tree children.
    for &c in dom.children[b].clone().iter() {
        rename_block(c, cfg, phis, dom, r, scalars);
    }

    // Pop stacks.
    for var in pushed.into_iter().rev() {
        r.stacks.get_mut(&var).expect("stack exists").pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::parse_program;

    fn ssa_of(src: &str) -> SsaProgram {
        let p = parse_program(src).unwrap();
        let mut scalars: BTreeSet<String> =
            p.decls.iter().filter(|d| !d.is_array()).map(|d| d.name.clone()).collect();
        // Induction variables are scalars too.
        fn collect_ivs(stmts: &[orchestra_lang::ast::Stmt], out: &mut BTreeSet<String>) {
            for s in stmts {
                if let orchestra_lang::ast::Stmt::Do { var, body, .. } = s {
                    out.insert(var.clone());
                    collect_ivs(body, out);
                }
                if let orchestra_lang::ast::Stmt::If { then_body, else_body, .. } = s {
                    collect_ivs(then_body, out);
                    collect_ivs(else_body, out);
                }
            }
        }
        collect_ivs(&p.body, &mut scalars);
        let cfg = Cfg::from_stmts(&p.body);
        to_ssa(&cfg, &scalars)
    }

    #[test]
    fn straight_line_versions_increment() {
        let ssa = ssa_of("program p\n integer a\n a = 1\n a = 2\nend");
        let b0 = &ssa.cfg.blocks[0];
        let SimpleStmt::Assign { target: LValue::Var(n1), .. } = &b0.stmts[0] else { panic!() };
        let SimpleStmt::Assign { target: LValue::Var(n2), .. } = &b0.stmts[1] else { panic!() };
        assert_eq!(split_ssa_name(n1), Some(("a", 1)));
        assert_eq!(split_ssa_name(n2), Some(("a", 2)));
    }

    #[test]
    fn use_sees_most_recent_def() {
        let ssa = ssa_of("program p\n integer a, b\n a = 1\n b = a + 1\n a = b\nend");
        let b0 = &ssa.cfg.blocks[0];
        let SimpleStmt::Assign { value, .. } = &b0.stmts[1] else { panic!() };
        let Expr::Bin(_, l, _) = value else { panic!() };
        assert_eq!(**l, Expr::Var("a#1".into()));
    }

    #[test]
    fn if_join_gets_phi() {
        let ssa =
            ssa_of("program p\n integer a, b\n if (a = 0) { b = 1 } else { b = 2 }\n a = b\nend");
        let join = ssa
            .phis
            .iter()
            .enumerate()
            .find(|(_, p)| p.iter().any(|phi| phi.var == "b"))
            .map(|(i, _)| i)
            .expect("phi for b");
        let phi = ssa.phis[join].iter().find(|p| p.var == "b").unwrap();
        assert_eq!(phi.args.len(), 2);
        let mut versions: Vec<_> =
            phi.args.iter().map(|(_, n)| split_ssa_name(n).unwrap().1).collect();
        versions.sort();
        assert_eq!(versions, vec![1, 2]);
    }

    #[test]
    fn loop_header_phi_for_induction_var() {
        let ssa =
            ssa_of("program p\n integer n = 3\n integer x[1..n]\n do i = 1, n { x[i] = i }\nend");
        let header = ssa.cfg.loops[0].header;
        let phi = ssa.phis[header].iter().find(|p| p.var == "i").expect("phi for i");
        assert_eq!(phi.args.len(), 2, "preheader + back edge");
        // One arg is the preheader's i#1 (= lo), the other the increment's def.
        let pre = ssa.cfg.loops[0].preheader;
        let inc = ssa.cfg.loops[0].increment;
        assert!(phi.args.iter().any(|(b, _)| *b == pre));
        assert!(phi.args.iter().any(|(b, _)| *b == inc));
    }

    #[test]
    fn reduction_gets_phi_in_header() {
        let ssa = ssa_of("program p\n integer n = 3, s\n do i = 1, n { s = s + i }\nend");
        let header = ssa.cfg.loops[0].header;
        assert!(ssa.phis[header].iter().any(|p| p.var == "s"));
    }

    #[test]
    fn arrays_are_not_renamed() {
        let ssa =
            ssa_of("program p\n integer n = 3\n integer x[1..n]\n do i = 1, n { x[i] = i }\nend");
        for b in &ssa.cfg.blocks {
            for s in &b.stmts {
                if let SimpleStmt::Assign { target: LValue::Index(a, _), .. } = s {
                    assert_eq!(a, "x", "array names must stay untouched");
                }
            }
        }
    }

    #[test]
    fn def_block_recorded() {
        let ssa = ssa_of("program p\n integer a\n a = 1\nend");
        assert_eq!(ssa.def_block.get("a#1"), Some(&0));
        assert_eq!(ssa.def_block.get("a#0"), Some(&ssa.cfg.entry));
    }

    #[test]
    fn uninitialized_use_is_version_zero() {
        let ssa = ssa_of("program p\n integer a, b\n b = a\nend");
        let SimpleStmt::Assign { value, .. } = &ssa.cfg.blocks[0].stmts[0] else { panic!() };
        assert_eq!(*value, Expr::Var("a#0".into()));
    }

    #[test]
    fn nested_loops_rename_consistently() {
        let ssa = ssa_of(
            "program p\n integer n = 2\n integer a[1..n, 1..n]\n do i = 1, n { do j = 1, n { a[i, j] = i + j } }\nend",
        );
        // Every use of i inside the inner loop must refer to the outer
        // header φ (the only live def at that point).
        let outer_header = ssa.cfg.loops.iter().find(|l| l.var == "i").unwrap().header;
        let phi_i = ssa.phis[outer_header].iter().find(|p| p.var == "i").unwrap();
        let mut seen = false;
        for b in &ssa.cfg.blocks {
            for s in &b.stmts {
                if let SimpleStmt::Assign { target: LValue::Index(_, idx), .. } = s {
                    if let Expr::Var(n) = &idx[0] {
                        assert_eq!(n, &phi_i.dest);
                        seen = true;
                    }
                }
            }
        }
        assert!(seen);
    }

    #[test]
    fn ssa_name_round_trip() {
        assert_eq!(split_ssa_name(&ssa_name("col", 7)), Some(("col", 7)));
        assert_eq!(split_ssa_name("plain"), None);
    }
}
