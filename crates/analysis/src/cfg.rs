//! Control-flow graph construction (step 2 of the paper's analysis).
//!
//! Structured MF statements are lowered into a graph of basic blocks with
//! explicit branch/jump terminators. `do` loops become the classic
//! preheader / header / body / increment / exit diamond; masked loops
//! gain a mask-test block between the header and the body.
//!
//! Each block records the scalars it reads and writes and the arrays it
//! touches — the "memory usage" annotation the paper attaches to CFG
//! nodes before descriptor construction.

use orchestra_lang::ast::{BinOp, Expr, LValue, Stmt};
use std::collections::BTreeSet;
use std::fmt;

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// A non-branching statement placed inside a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum SimpleStmt {
    /// Assignment to a scalar or array element.
    Assign {
        /// Destination.
        target: LValue,
        /// Source expression.
        value: Expr,
    },
    /// Procedure call.
    Call {
        /// Procedure name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch.
    Branch {
        /// Branch condition (non-zero means taken).
        cond: Expr,
        /// Successor when the condition holds.
        then_b: BlockId,
        /// Successor when the condition fails.
        else_b: BlockId,
    },
    /// Program (or fragment) exit.
    Exit,
}

impl Terminator {
    /// Successor block ids, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then_b, else_b, .. } => vec![*then_b, *else_b],
            Terminator::Exit => Vec::new(),
        }
    }
}

/// The role a block plays in the loop structure (used by the induction
/// variable recognizer and by tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockRole {
    /// Ordinary straight-line code.
    Plain,
    /// Loop preheader (initializes the induction variable).
    Preheader,
    /// Loop header (bounds test).
    Header,
    /// Mask-test block of a masked loop.
    MaskTest,
    /// Loop increment block.
    Increment,
    /// Loop exit landing block.
    Exit,
}

/// A basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Straight-line statements.
    pub stmts: Vec<SimpleStmt>,
    /// Terminator.
    pub term: Terminator,
    /// Predecessor blocks (filled by [`Cfg::compute_preds`]).
    pub preds: Vec<BlockId>,
    /// Structural role.
    pub role: BlockRole,
}

impl Block {
    fn new(role: BlockRole) -> Self {
        Block { stmts: Vec::new(), term: Terminator::Exit, preds: Vec::new(), role }
    }

    /// Scalar variables written by statements in this block.
    pub fn scalar_defs(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in &self.stmts {
            if let SimpleStmt::Assign { target: LValue::Var(v), .. } = s {
                out.insert(v.clone());
            }
        }
        out
    }

    /// Scalar variables read by statements or the terminator.
    pub fn scalar_uses(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in &self.stmts {
            match s {
                SimpleStmt::Assign { target, value } => {
                    if let LValue::Index(_, idx) = target {
                        for e in idx {
                            e.scalar_reads(&mut out);
                        }
                    }
                    value.scalar_reads(&mut out);
                }
                SimpleStmt::Call { args, .. } => {
                    for a in args {
                        a.scalar_reads(&mut out);
                    }
                }
            }
        }
        if let Terminator::Branch { cond, .. } = &self.term {
            cond.scalar_reads(&mut out);
        }
        out
    }

    /// Arrays written by statements in this block.
    pub fn array_defs(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in &self.stmts {
            match s {
                SimpleStmt::Assign { target: LValue::Index(a, _), .. } => {
                    out.insert(a.clone());
                }
                SimpleStmt::Call { args, .. } => {
                    // Conservative: a call may write any array argument.
                    for a in args {
                        if let Expr::Var(n) = a {
                            out.insert(n.clone());
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Arrays read by statements or the terminator.
    pub fn array_uses(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in &self.stmts {
            match s {
                SimpleStmt::Assign { target, value } => {
                    if let LValue::Index(_, idx) = target {
                        for e in idx {
                            e.array_reads(&mut out);
                        }
                    }
                    value.array_reads(&mut out);
                }
                SimpleStmt::Call { args, .. } => {
                    for a in args {
                        a.array_reads(&mut out);
                    }
                }
            }
        }
        if let Terminator::Branch { cond, .. } = &self.term {
            cond.array_reads(&mut out);
        }
        out
    }
}

/// Metadata about one lowered `do` loop.
#[derive(Debug, Clone)]
pub struct LoopShape {
    /// Induction variable name.
    pub var: String,
    /// Preheader block.
    pub preheader: BlockId,
    /// Header (bounds-test) block.
    pub header: BlockId,
    /// Increment block.
    pub increment: BlockId,
    /// Exit block.
    pub exit: BlockId,
    /// Lower bound expression.
    pub lo: Expr,
    /// Upper bound expression.
    pub hi: Expr,
    /// Step expression (None = 1).
    pub step: Option<Expr>,
}

/// A control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Entry block id (always 0).
    pub entry: BlockId,
    /// Loops discovered during lowering, outermost first.
    pub loops: Vec<LoopShape>,
}

impl Cfg {
    /// Lowers a whole program: scalar declaration initializers become
    /// assignments in the entry block, followed by the body.
    pub fn from_program(prog: &orchestra_lang::ast::Program) -> Cfg {
        let mut stmts: Vec<Stmt> = prog
            .decls
            .iter()
            .filter(|d| !d.is_array())
            .filter_map(|d| {
                d.init.as_ref().map(|init| Stmt::Assign {
                    target: LValue::Var(d.name.clone()),
                    value: init.clone(),
                })
            })
            .collect();
        stmts.extend(prog.body.iter().cloned());
        Cfg::from_stmts(&stmts)
    }

    /// Lowers a statement list into a CFG.
    pub fn from_stmts(stmts: &[Stmt]) -> Cfg {
        let mut b = Builder { blocks: Vec::new(), loops: Vec::new() };
        let entry = b.new_block(BlockRole::Plain);
        let last = b.lower_seq(stmts, entry);
        b.blocks[last].term = Terminator::Exit;
        let mut cfg = Cfg { blocks: b.blocks, entry, loops: b.loops };
        cfg.compute_preds();
        cfg
    }

    /// Recomputes predecessor lists from terminators.
    pub fn compute_preds(&mut self) {
        for bl in &mut self.blocks {
            bl.preds.clear();
        }
        for i in 0..self.blocks.len() {
            for s in self.blocks[i].term.successors() {
                self.blocks[s].preds.push(i);
            }
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the graph has no blocks (never happens for `from_stmts`).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Reverse postorder over reachable blocks.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        // Iterative DFS to avoid recursion depth limits on long programs.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry] = true;
        while let Some(&(b, next)) = stack.last() {
            let succs = self.blocks[b].term.successors();
            if next < succs.len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let s = succs[next];
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "B{i} ({:?}):", b.role)?;
            for s in &b.stmts {
                match s {
                    SimpleStmt::Assign { target, value } => {
                        let t = match target {
                            LValue::Var(v) => v.clone(),
                            LValue::Index(a, _) => format!("{a}[…]"),
                        };
                        writeln!(f, "  {t} = {}", orchestra_lang::pretty::expr_to_string(value))?;
                    }
                    SimpleStmt::Call { name, .. } => writeln!(f, "  call {name}(…)")?,
                }
            }
            match &b.term {
                Terminator::Jump(t) => writeln!(f, "  jump B{t}")?,
                Terminator::Branch { cond, then_b, else_b } => writeln!(
                    f,
                    "  branch ({}) B{then_b} B{else_b}",
                    orchestra_lang::pretty::expr_to_string(cond)
                )?,
                Terminator::Exit => writeln!(f, "  exit")?,
            }
        }
        Ok(())
    }
}

struct Builder {
    blocks: Vec<Block>,
    loops: Vec<LoopShape>,
}

impl Builder {
    fn new_block(&mut self, role: BlockRole) -> BlockId {
        self.blocks.push(Block::new(role));
        self.blocks.len() - 1
    }

    /// Lowers a sequence into blocks starting at `cur`; returns the block
    /// where control ends up afterwards.
    fn lower_seq(&mut self, stmts: &[Stmt], mut cur: BlockId) -> BlockId {
        for s in stmts {
            cur = self.lower_stmt(s, cur);
        }
        cur
    }

    fn lower_stmt(&mut self, s: &Stmt, cur: BlockId) -> BlockId {
        match s {
            Stmt::Assign { target, value } => {
                self.blocks[cur]
                    .stmts
                    .push(SimpleStmt::Assign { target: target.clone(), value: value.clone() });
                cur
            }
            Stmt::Call { name, args } => {
                self.blocks[cur]
                    .stmts
                    .push(SimpleStmt::Call { name: name.clone(), args: args.clone() });
                cur
            }
            Stmt::If { cond, then_body, else_body } => {
                let then_entry = self.new_block(BlockRole::Plain);
                let else_entry = self.new_block(BlockRole::Plain);
                let join = self.new_block(BlockRole::Plain);
                self.blocks[cur].term = Terminator::Branch {
                    cond: cond.clone(),
                    then_b: then_entry,
                    else_b: else_entry,
                };
                let then_end = self.lower_seq(then_body, then_entry);
                self.blocks[then_end].term = Terminator::Jump(join);
                let else_end = self.lower_seq(else_body, else_entry);
                self.blocks[else_end].term = Terminator::Jump(join);
                join
            }
            Stmt::Do { var, ranges, mask, body, .. } => {
                let mut cur = cur;
                for r in ranges {
                    cur = self.lower_loop(var, r, mask.as_ref(), body, cur);
                }
                cur
            }
        }
    }

    fn lower_loop(
        &mut self,
        var: &str,
        r: &orchestra_lang::ast::Range,
        mask: Option<&Expr>,
        body: &[Stmt],
        cur: BlockId,
    ) -> BlockId {
        let preheader = cur;
        let header = self.new_block(BlockRole::Header);
        let increment = self.new_block(BlockRole::Increment);
        let exit = self.new_block(BlockRole::Exit);

        // preheader: var = lo
        self.blocks[preheader]
            .stmts
            .push(SimpleStmt::Assign { target: LValue::Var(var.to_string()), value: r.lo.clone() });
        self.blocks[preheader].term = Terminator::Jump(header);
        if self.blocks[preheader].role == BlockRole::Plain {
            self.blocks[preheader].role = BlockRole::Preheader;
        }

        // Loop test: positive step uses `var <= hi`; a provably negative
        // constant step uses `var >= hi`.
        let descending = r.step.as_ref().and_then(|e| e.as_int()).is_some_and(|v| v < 0);
        let cmp = if descending { BinOp::Ge } else { BinOp::Le };
        let cond = Expr::bin(cmp, Expr::Var(var.to_string()), r.hi.clone());

        // Body entry (behind the mask test if masked).
        let body_entry = if let Some(m) = mask {
            let mask_block = self.new_block(BlockRole::MaskTest);
            let body_head = self.new_block(BlockRole::Plain);
            self.blocks[header].term =
                Terminator::Branch { cond, then_b: mask_block, else_b: exit };
            self.blocks[mask_block].term =
                Terminator::Branch { cond: m.clone(), then_b: body_head, else_b: increment };
            body_head
        } else {
            let body_head = self.new_block(BlockRole::Plain);
            self.blocks[header].term = Terminator::Branch { cond, then_b: body_head, else_b: exit };
            body_head
        };

        let body_end = self.lower_seq(body, body_entry);
        self.blocks[body_end].term = Terminator::Jump(increment);

        // increment: var = var + step
        let step = r.step.clone().unwrap_or(Expr::IntLit(1));
        self.blocks[increment].stmts.push(SimpleStmt::Assign {
            target: LValue::Var(var.to_string()),
            value: Expr::bin(BinOp::Add, Expr::Var(var.to_string()), step.clone()),
        });
        self.blocks[increment].term = Terminator::Jump(header);

        self.loops.push(LoopShape {
            var: var.to_string(),
            preheader,
            header,
            increment,
            exit,
            lo: r.lo.clone(),
            hi: r.hi.clone(),
            step: r.step.clone(),
        });
        exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::parse_program;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse_program(src).unwrap();
        Cfg::from_stmts(&p.body)
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = cfg_of("program p\n integer a, b\n a = 1\n b = 2\nend");
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.blocks[0].stmts.len(), 2);
        assert_eq!(cfg.blocks[0].term, Terminator::Exit);
    }

    #[test]
    fn if_produces_diamond() {
        let cfg = cfg_of("program p\n integer a, b\n if (a = 0) { b = 1 } else { b = 2 }\nend");
        // entry, then, else, join
        assert_eq!(cfg.len(), 4);
        let Terminator::Branch { then_b, else_b, .. } = &cfg.blocks[0].term else { panic!() };
        assert_ne!(then_b, else_b);
        // Both arms join.
        assert_eq!(cfg.blocks[*then_b].term, cfg.blocks[*else_b].term);
    }

    #[test]
    fn loop_produces_back_edge() {
        let cfg =
            cfg_of("program p\n integer n = 3\n integer x[1..n]\n do i = 1, n { x[i] = i }\nend");
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        // The increment jumps back to the header.
        assert_eq!(cfg.blocks[l.increment].term, Terminator::Jump(l.header));
        // The header has two predecessors: preheader and increment.
        assert_eq!(cfg.blocks[l.header].preds.len(), 2);
    }

    #[test]
    fn masked_loop_has_mask_block() {
        let cfg = cfg_of(
            "program p\n integer n = 3\n integer m[1..n], x[1..n]\n do i = 1, n where (m[i] <> 0) { x[i] = 1 }\nend",
        );
        assert!(cfg.blocks.iter().any(|b| b.role == BlockRole::MaskTest));
    }

    #[test]
    fn discontinuous_range_generates_two_loops() {
        let cfg = cfg_of(
            "program p\n integer n = 9, a = 4\n integer x[1..n]\n do i = 1, a - 1 and a + 1, n { x[i] = 1 }\nend",
        );
        assert_eq!(cfg.loops.len(), 2);
        assert_eq!(cfg.loops[0].var, cfg.loops[1].var);
    }

    #[test]
    fn rpo_starts_at_entry_and_visits_all() {
        let cfg =
            cfg_of("program p\n integer n = 3\n integer x[1..n]\n do i = 1, n { x[i] = i }\nend");
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], cfg.entry);
        assert_eq!(rpo.len(), cfg.len(), "all blocks reachable");
    }

    #[test]
    fn block_memory_annotations() {
        let cfg = cfg_of(
            "program p\n integer n = 2, s\n integer x[1..n], y[1..n]\n do i = 1, n { x[i] = y[i] + s }\nend",
        );
        let body = cfg
            .blocks
            .iter()
            .find(|b| {
                b.role == BlockRole::Plain
                    && b.stmts.iter().any(|s| {
                        matches!(s, SimpleStmt::Assign { target: LValue::Index(_, _), .. })
                    })
            })
            .expect("body block");
        assert!(body.array_defs().contains("x"));
        assert!(body.array_uses().contains("y"));
        assert!(body.scalar_uses().contains("s"));
        assert!(body.scalar_uses().contains("i"));
    }

    #[test]
    fn descending_loop_uses_ge_test() {
        let cfg = cfg_of(
            "program p\n integer n = 3\n integer x[1..n]\n do i = n, 1, -1 { x[i] = i }\nend",
        );
        let header = &cfg.blocks[cfg.loops[0].header];
        let Terminator::Branch { cond, .. } = &header.term else { panic!() };
        let Expr::Bin(op, _, _) = cond else { panic!() };
        assert_eq!(*op, BinOp::Ge);
    }

    #[test]
    fn call_is_simple_stmt() {
        let cfg = cfg_of(
            "program p\n integer n = 1\n float x[1..n]\n proc z(float x[1..n], integer n) { x[1] = 0.0 }\n call z(x, n)\nend",
        );
        assert!(matches!(cfg.blocks[0].stmts[0], SimpleStmt::Call { .. }));
        assert!(cfg.blocks[0].array_defs().contains("x"));
    }
}
