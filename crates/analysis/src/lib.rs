#![warn(missing_docs)]
//! # orchestra-analysis
//!
//! Symbolic program analysis for the PLDI '93 *Orchestrating
//! Interactions Among Parallel Computations* reproduction.
//!
//! Implements the six analysis steps of §3.1 of the paper:
//!
//! 1. **Call-site analysis** ([`callsites`]) — groups call sites by
//!    profile weight, aliasing pattern and constant arguments.
//! 2. **Memory-usage analysis** ([`mod@cfg`]) — a control-flow graph whose
//!    nodes carry scalar/array read-write annotations.
//! 3. **SSA conversion** ([`ssa`]) — Cytron et al. φ placement using
//!    dominance frontiers ([`dom`]).
//! 4. **Aggregate propagation** ([`aggregate`]) — temporary names for
//!    values that round-trip through array elements.
//! 5. **Alias elimination** ([`alias`]) — invalidates SSA values that
//!    aliased writes may have changed.
//! 6. **Value propagation** ([`propagate`]) — annotates SSA names with
//!    [`symbolic::SymValue`]s (linear expressions and ranges) and blocks
//!    with path [`symbolic::Assertion`]s.
//!
//! The one-call entry point is [`analyze_program`].
//!
//! ```
//! use orchestra_lang::parse_program;
//! use orchestra_analysis::analyze_program;
//!
//! let p = parse_program(
//!     "program t\n integer n = 4\n integer x[1..n]\n do i = 1, n { x[i] = i }\nend",
//! ).unwrap();
//! let a = analyze_program(&p);
//! assert_eq!(a.ssa.cfg.loops.len(), 1);
//! ```

pub mod aggregate;
pub mod alias;
pub mod callsites;
pub mod cfg;
pub mod dce;
pub mod dom;
pub mod propagate;
pub mod ssa;
pub mod symbolic;
pub mod verify;

use orchestra_lang::ast::{Program, Stmt};
use std::collections::{BTreeMap, BTreeSet};

pub use propagate::Propagation;
pub use symbolic::{Assertion, Ineq, SymExpr, SymRange, SymValue};

/// The complete analysis result for one program.
#[derive(Debug, Clone)]
pub struct AnalyzedProgram {
    /// SSA-form CFG with φ nodes and dominator tree.
    pub ssa: ssa::SsaProgram,
    /// Symbolic values, block assertions, loop ranges.
    pub prop: propagate::Propagation,
    /// Call-site groups.
    pub call_groups: Vec<callsites::CallGroup>,
    /// Alias findings.
    pub aliases: alias::AliasInfo,
    /// Number of aggregate reads forwarded.
    pub aggregate_forwards: usize,
}

/// Collects the scalar variable names of a program: declared scalars
/// plus every loop induction variable.
pub fn collect_scalars(prog: &Program) -> BTreeSet<String> {
    let mut out: BTreeSet<String> =
        prog.decls.iter().filter(|d| !d.is_array()).map(|d| d.name.clone()).collect();
    fn walk(stmts: &[Stmt], out: &mut BTreeSet<String>) {
        for s in stmts {
            match s {
                Stmt::Do { var, body, .. } => {
                    out.insert(var.clone());
                    walk(body, out);
                }
                Stmt::If { then_body, else_body, .. } => {
                    walk(then_body, out);
                    walk(else_body, out);
                }
                _ => {}
            }
        }
    }
    walk(&prog.body, &mut out);
    out
}

/// Runs the full analysis pipeline on a program body.
pub fn analyze_program(prog: &Program) -> AnalyzedProgram {
    analyze_with_profile(prog, &BTreeMap::new())
}

/// Like [`analyze_program`], with measured profile weights for call
/// sites (pre-order call index → weight).
pub fn analyze_with_profile(prog: &Program, profile: &BTreeMap<usize, f64>) -> AnalyzedProgram {
    let scalars = collect_scalars(prog);
    let mut base_cfg = cfg::Cfg::from_program(prog);
    // Step 4 runs before SSA so forwarded scalars participate in
    // renaming and value propagation.
    let aggregate_forwards = aggregate::forward_aggregates(&mut base_cfg);
    let ssa_prog = ssa::to_ssa(&base_cfg, &scalars);
    let mut prop = propagate::propagate(&ssa_prog);
    let aliases = alias::detect_aliases(&ssa_prog.cfg);
    alias::apply_invalidations(&mut prop, &aliases);
    let sites = callsites::collect_call_sites(prog, profile);
    let call_groups = callsites::classify(&sites, &callsites::ClassifyConfig::default());
    AnalyzedProgram { ssa: ssa_prog, prop, call_groups, aliases, aggregate_forwards }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::parse_program;

    #[test]
    fn pipeline_runs_on_figure1() {
        let p = orchestra_lang::builder::figure1_program(8);
        let a = analyze_program(&p);
        assert_eq!(a.ssa.cfg.loops.len(), 5, "col, two inner i loops, B nest i and j");
        assert!(a.aliases.is_clean());
    }

    #[test]
    fn scalars_include_induction_vars() {
        let p = parse_program(
            "program t\n integer n = 4\n integer x[1..n]\n do k = 1, n { x[k] = k }\nend",
        )
        .unwrap();
        let s = collect_scalars(&p);
        assert!(s.contains("k"));
        assert!(s.contains("n"));
        assert!(!s.contains("x"));
    }

    #[test]
    fn aggregate_forwarding_feeds_value_prop() {
        let p = parse_program(
            "program t\n integer n = 4, v, w\n integer a[1..n]\n v = 7\n a[1] = v\n w = a[1]\nend",
        )
        .unwrap();
        let a = analyze_program(&p);
        assert_eq!(a.aggregate_forwards, 1);
        // w's value folds to 7 through the array round-trip.
        assert_eq!(a.prop.values.get("w#1"), Some(&SymValue::int(7)));
    }

    #[test]
    fn alias_invalidation_applied() {
        let p = parse_program(
            "program t\n integer n = 2\n float x[1..n], s\n proc w(float a[1..n], float b[1..n]) { a[1] = b[1] }\n call w(x, x)\n s = x[1]\nend",
        )
        .unwrap();
        let a = analyze_program(&p);
        assert_eq!(a.prop.values.get("s#1"), Some(&SymValue::Unknown));
    }
}
