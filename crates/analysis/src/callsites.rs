//! Call-site analysis (step 1 of the paper's analysis).
//!
//! Rather than summarizing each procedure once, the compiler classifies
//! call sites into groups by profile weight and argument characteristics.
//! Sites representing significant computation are only grouped with
//! others sharing the same *aliasing pattern* and *constant values*;
//! lighter sites are grouped more coarsely under a tunable heuristic.

use orchestra_lang::ast::{Expr, Program, Stmt};
use std::collections::BTreeMap;

/// One syntactic call site discovered in a program.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    /// Sequential id in discovery (pre-order) order.
    pub id: usize,
    /// Procedure name.
    pub proc: String,
    /// Actual argument expressions.
    pub args: Vec<Expr>,
    /// Profile weight (estimated or measured executions × cost).
    pub weight: f64,
    /// For each argument: `Some(j)` if it names the same variable as the
    /// earlier argument `j` (an aliasing pair), else `None`.
    pub alias_pattern: Vec<Option<usize>>,
    /// For each argument: its constant value if it is a literal.
    pub const_args: Vec<Option<i64>>,
}

impl CallSite {
    fn from_call(id: usize, name: &str, args: &[Expr], weight: f64) -> CallSite {
        let mut alias_pattern = vec![None; args.len()];
        for i in 0..args.len() {
            if let Expr::Var(vi) = &args[i] {
                alias_pattern[i] =
                    args[..i].iter().position(|a| matches!(a, Expr::Var(vj) if vj == vi));
            }
        }
        let const_args = args.iter().map(|a| a.as_int()).collect();
        CallSite {
            id,
            proc: name.to_string(),
            args: args.to_vec(),
            weight,
            alias_pattern,
            const_args,
        }
    }

    /// True if any two arguments name the same variable.
    pub fn has_aliasing(&self) -> bool {
        self.alias_pattern.iter().any(Option::is_some)
    }
}

/// A group of call sites that will share one procedure summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CallGroup {
    /// Procedure name.
    pub proc: String,
    /// Ids of member call sites.
    pub sites: Vec<usize>,
    /// Whether the members are "hot" (analyzed with full precision).
    pub hot: bool,
}

/// Tunables for the grouping heuristic.
#[derive(Debug, Clone, Copy)]
pub struct ClassifyConfig {
    /// Sites at or above this weight are summarized per
    /// (alias-pattern, constant-values) signature.
    pub hot_threshold: f64,
    /// When true, cold sites are still separated by aliasing pattern;
    /// when false they merge per procedure.
    pub separate_cold_aliases: bool,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig { hot_threshold: 1000.0, separate_cold_aliases: false }
    }
}

/// Collects the call sites of a program in pre-order.
///
/// `profile` maps a pre-order call index to a measured weight; sites
/// without an entry get weight 1. Loop nesting multiplies the default
/// weight by a per-level factor of 100 as a static estimate.
pub fn collect_call_sites(prog: &Program, profile: &BTreeMap<usize, f64>) -> Vec<CallSite> {
    let mut sites = Vec::new();
    fn walk(stmts: &[Stmt], depth: u32, sites: &mut Vec<CallSite>, profile: &BTreeMap<usize, f64>) {
        for s in stmts {
            match s {
                Stmt::Call { name, args } => {
                    let id = sites.len();
                    let weight =
                        profile.get(&id).copied().unwrap_or_else(|| 100f64.powi(depth as i32));
                    sites.push(CallSite::from_call(id, name, args, weight));
                }
                Stmt::Do { body, .. } => walk(body, depth + 1, sites, profile),
                Stmt::If { then_body, else_body, .. } => {
                    walk(then_body, depth, sites, profile);
                    walk(else_body, depth, sites, profile);
                }
                Stmt::Assign { .. } => {}
            }
        }
    }
    walk(&prog.body, 0, &mut sites, profile);
    sites
}

/// Groups call sites per the paper's heuristic.
pub fn classify(sites: &[CallSite], config: &ClassifyConfig) -> Vec<CallGroup> {
    // Group key: hot sites use (proc, alias pattern, constant values);
    // cold sites use (proc [, alias pattern]).
    let mut groups: BTreeMap<String, CallGroup> = BTreeMap::new();
    for s in sites {
        let hot = s.weight >= config.hot_threshold;
        let key = if hot {
            format!("hot|{}|{:?}|{:?}", s.proc, s.alias_pattern, s.const_args)
        } else if config.separate_cold_aliases {
            format!("cold|{}|{:?}", s.proc, s.alias_pattern)
        } else {
            format!("cold|{}", s.proc)
        };
        groups
            .entry(key)
            .or_insert_with(|| CallGroup { proc: s.proc.clone(), sites: Vec::new(), hot })
            .sites
            .push(s.id);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::parse_program;

    fn prog(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    const SRC: &str = r#"
program p
  integer n = 8
  float x[1..n], y[1..n]
  proc work(float a[1..n], float b[1..n], integer k) { a[1] = b[1] }
  call work(x, y, 1)
  do i = 1, n {
    call work(x, y, 1)
    call work(x, x, 2)
  }
end
"#;

    #[test]
    fn collects_sites_with_nesting_weights() {
        let p = prog(SRC);
        let sites = collect_call_sites(&p, &BTreeMap::new());
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].weight, 1.0);
        assert_eq!(sites[1].weight, 100.0);
        assert_eq!(sites[2].weight, 100.0);
    }

    #[test]
    fn detects_alias_pattern() {
        let p = prog(SRC);
        let sites = collect_call_sites(&p, &BTreeMap::new());
        assert!(!sites[1].has_aliasing());
        assert!(sites[2].has_aliasing());
        assert_eq!(sites[2].alias_pattern[1], Some(0));
    }

    #[test]
    fn constant_args_recorded() {
        let p = prog(SRC);
        let sites = collect_call_sites(&p, &BTreeMap::new());
        assert_eq!(sites[1].const_args[2], Some(1));
        assert_eq!(sites[1].const_args[0], None);
    }

    #[test]
    fn hot_sites_split_by_signature() {
        let p = prog(SRC);
        let mut profile = BTreeMap::new();
        profile.insert(1usize, 10_000.0);
        profile.insert(2usize, 10_000.0);
        let sites = collect_call_sites(&p, &profile);
        let groups = classify(&sites, &ClassifyConfig::default());
        // Sites 1 and 2 are hot with different alias/const signatures →
        // separate groups; site 0 is cold → its own group.
        assert_eq!(groups.len(), 3);
        let hot_groups: Vec<_> = groups.iter().filter(|g| g.hot).collect();
        assert_eq!(hot_groups.len(), 2);
    }

    #[test]
    fn cold_sites_merge_per_proc() {
        let p = prog(SRC);
        let sites = collect_call_sites(&p, &BTreeMap::new());
        let groups =
            classify(&sites, &ClassifyConfig { hot_threshold: 1e9, separate_cold_aliases: false });
        assert_eq!(groups.len(), 1, "all cold sites of `work` merge");
        assert_eq!(groups[0].sites.len(), 3);
    }

    #[test]
    fn cold_alias_separation_heuristic() {
        let p = prog(SRC);
        let sites = collect_call_sites(&p, &BTreeMap::new());
        let groups =
            classify(&sites, &ClassifyConfig { hot_threshold: 1e9, separate_cold_aliases: true });
        assert_eq!(groups.len(), 2, "aliased and non-aliased patterns separate");
    }

    #[test]
    fn profile_overrides_static_weight() {
        let p = prog(SRC);
        let mut profile = BTreeMap::new();
        profile.insert(0usize, 5_000.0);
        let sites = collect_call_sites(&p, &profile);
        assert_eq!(sites[0].weight, 5_000.0);
    }
}
