//! Alias elimination (step 5 of the paper's analysis).
//!
//! "When aliases may cause an assignment to overwrite uses of other SSA
//! names, the uses that may be affected are marked invalid. Potential
//! aliases are detected in a top-down traversal of the CFG, using the
//! description of each node's memory behavior to determine which SSA
//! names it may invalidate."
//!
//! In MF, aliases arise only from procedure calls: passing the same
//! array to two by-reference parameters, or passing overlapping arrays.
//! This pass finds the arrays involved in any aliasing call and marks as
//! *invalid* every SSA name whose defining expression reads such an
//! array at or after the aliasing call (in CFG order) — those values can
//! no longer be trusted by value propagation or descriptors.

use crate::cfg::{Cfg, SimpleStmt};
use crate::propagate::Propagation;
use crate::symbolic::SymValue;
use orchestra_lang::ast::{Expr, LValue};
use std::collections::BTreeSet;

/// The result of alias detection.
#[derive(Debug, Clone, Default)]
pub struct AliasInfo {
    /// Arrays that participate in at least one aliasing call.
    pub aliased_arrays: BTreeSet<String>,
    /// SSA names whose symbolic values must be discarded.
    pub invalidated: BTreeSet<String>,
}

impl AliasInfo {
    /// True when the program is alias-free.
    pub fn is_clean(&self) -> bool {
        self.aliased_arrays.is_empty()
    }
}

/// Detects aliasing calls and the SSA names they invalidate.
///
/// The traversal is top-down in reverse postorder; once an array becomes
/// aliased it stays aliased for all later blocks (a sound
/// over-approximation of the paper's per-path marking).
pub fn detect_aliases(cfg: &Cfg) -> AliasInfo {
    let mut info = AliasInfo::default();
    let rpo = cfg.reverse_postorder();

    // First sweep: find aliasing calls.
    for &b in &rpo {
        for s in &cfg.blocks[b].stmts {
            if let SimpleStmt::Call { args, .. } = s {
                let mut seen: BTreeSet<&str> = BTreeSet::new();
                for a in args {
                    if let Expr::Var(name) = a {
                        if !seen.insert(name.as_str()) {
                            // Same variable appears twice: alias.
                            info.aliased_arrays.insert(name.clone());
                        }
                    }
                }
            }
        }
    }
    if info.aliased_arrays.is_empty() {
        return info;
    }

    // Second sweep: any SSA def whose RHS reads an aliased array is
    // invalid (the write through one alias may have changed the value
    // observed through the other).
    for &b in &rpo {
        for s in &cfg.blocks[b].stmts {
            if let SimpleStmt::Assign { target: LValue::Var(def), value } = s {
                let mut arrays = BTreeSet::new();
                value.array_reads(&mut arrays);
                if arrays.iter().any(|a| info.aliased_arrays.contains(a)) {
                    info.invalidated.insert(def.clone());
                }
            }
        }
    }
    info
}

/// Applies invalidations to a propagation result, downgrading the
/// affected SSA names to [`SymValue::Unknown`].
pub fn apply_invalidations(prop: &mut Propagation, info: &AliasInfo) {
    for name in &info.invalidated {
        if let Some(v) = prop.values.get_mut(name) {
            *v = SymValue::Unknown;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use orchestra_lang::parse_program;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse_program(src).unwrap();
        Cfg::from_stmts(&p.body)
    }

    #[test]
    fn clean_program_has_no_aliases() {
        let cfg = cfg_of(
            "program p\n integer n = 2\n float x[1..n], y[1..n]\n proc w(float a[1..n], float b[1..n]) { a[1] = b[1] }\n call w(x, y)\nend",
        );
        let info = detect_aliases(&cfg);
        assert!(info.is_clean());
    }

    #[test]
    fn duplicate_argument_is_alias() {
        let cfg = cfg_of(
            "program p\n integer n = 2\n float x[1..n]\n proc w(float a[1..n], float b[1..n]) { a[1] = b[1] }\n call w(x, x)\nend",
        );
        let info = detect_aliases(&cfg);
        assert!(info.aliased_arrays.contains("x"));
    }

    #[test]
    fn reads_of_aliased_array_invalidated() {
        let cfg = cfg_of(
            "program p\n integer n = 2\n float x[1..n], s\n proc w(float a[1..n], float b[1..n]) { a[1] = b[1] }\n call w(x, x)\n s = x[1]\nend",
        );
        let info = detect_aliases(&cfg);
        assert!(info.invalidated.contains("s"));
    }

    #[test]
    fn reads_of_other_arrays_kept() {
        let cfg = cfg_of(
            "program p\n integer n = 2\n float x[1..n], y[1..n], s, t\n proc w(float a[1..n], float b[1..n]) { a[1] = b[1] }\n call w(x, x)\n s = x[1]\n t = y[1]\nend",
        );
        let info = detect_aliases(&cfg);
        assert!(info.invalidated.contains("s"));
        assert!(!info.invalidated.contains("t"));
    }
}
