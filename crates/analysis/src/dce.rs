//! Dead code elimination driven by the symbolic analysis.
//!
//! §3 of the paper notes the symbolic analysis "is also used to identify
//! independence and improve traditional optimizations like dead code
//! elimination". This pass removes:
//!
//! * assignments to scalars that are never subsequently read (backward
//!   liveness over the structured AST);
//! * loops and conditionals whose bodies become empty;
//! * conditional branches whose condition is decided by propagated
//!   symbolic values (`if (1 < 2)` after constant folding).
//!
//! Writes to arrays are always considered live (arrays are the
//! program's observable output in MF).

use crate::propagate::lin_expr;
use crate::symbolic::SymValue;
use orchestra_lang::ast::{Expr, LValue, Program, Stmt};
use std::collections::{BTreeSet, HashMap};

/// Statistics from one DCE run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DceStats {
    /// Scalar assignments removed.
    pub assignments_removed: usize,
    /// Empty loops removed.
    pub loops_removed: usize,
    /// Conditionals folded to one branch.
    pub branches_folded: usize,
}

impl DceStats {
    /// Total number of eliminations.
    pub fn total(&self) -> usize {
        self.assignments_removed + self.loops_removed + self.branches_folded
    }
}

/// Runs dead code elimination on a program, returning the cleaned
/// program and what was removed. Iterates to a fixpoint.
pub fn eliminate_dead_code(prog: &Program) -> (Program, DceStats) {
    let mut out = prog.clone();
    let mut stats = DceStats::default();
    loop {
        let mut round = DceStats::default();
        // Constant-fold decidable branches first: this can make code
        // dead that liveness then removes.
        let values: HashMap<String, SymValue> = out
            .decls
            .iter()
            .filter(|d| !d.is_array())
            .filter_map(|d| {
                d.init.as_ref().and_then(|e| e.as_int()).map(|v| (d.name.clone(), SymValue::int(v)))
            })
            .collect();
        out.body = fold_branches(&out.body, &values, &mut round);

        // Backward liveness: array writes and mask/bound reads keep
        // scalars alive.
        let mut live: BTreeSet<String> = BTreeSet::new();
        out.body = sweep_stmts(&out.body, &mut live, &mut round);

        stats.assignments_removed += round.assignments_removed;
        stats.loops_removed += round.loops_removed;
        stats.branches_folded += round.branches_folded;
        if round.total() == 0 {
            return (out, stats);
        }
    }
}

/// Replaces decidable conditionals with the taken branch.
fn fold_branches(
    stmts: &[Stmt],
    values: &HashMap<String, SymValue>,
    stats: &mut DceStats,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::If { cond, then_body, else_body } => {
                let decided = decide(cond, values);
                match decided {
                    Some(true) => {
                        stats.branches_folded += 1;
                        out.extend(fold_branches(then_body, values, stats));
                    }
                    Some(false) => {
                        stats.branches_folded += 1;
                        out.extend(fold_branches(else_body, values, stats));
                    }
                    None => out.push(Stmt::If {
                        cond: cond.clone(),
                        then_body: fold_branches(then_body, values, stats),
                        else_body: fold_branches(else_body, values, stats),
                    }),
                }
            }
            Stmt::Do { label, var, ranges, mask, body } => out.push(Stmt::Do {
                label: label.clone(),
                var: var.clone(),
                ranges: ranges.clone(),
                mask: mask.clone(),
                body: fold_branches(body, values, stats),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Decides a branch condition from known symbolic values, when possible.
fn decide(cond: &Expr, values: &HashMap<String, SymValue>) -> Option<bool> {
    use orchestra_lang::ast::BinOp;
    if let Expr::Bin(op, l, r) = cond {
        if op.is_comparison() {
            let (a, b) = (lin_expr(l, values)?, lin_expr(r, values)?);
            let d = a.sub(&b).as_constant()?;
            return Some(match op {
                BinOp::Eq => d == 0,
                BinOp::Ne => d != 0,
                BinOp::Lt => d < 0,
                BinOp::Le => d <= 0,
                BinOp::Gt => d > 0,
                BinOp::Ge => d >= 0,
                _ => return None,
            });
        }
    }
    None
}

/// Backward sweep removing dead scalar assignments and empty control
/// structure. `live` is the set of scalars live *after* the statements.
fn sweep_stmts(stmts: &[Stmt], live: &mut BTreeSet<String>, stats: &mut DceStats) -> Vec<Stmt> {
    let mut kept_rev: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for s in stmts.iter().rev() {
        match s {
            Stmt::Assign { target: LValue::Var(name), value } => {
                if live.contains(name) {
                    // The assignment redefines `name`: earlier defs are
                    // dead unless `value` itself reads the name.
                    live.remove(name);
                    value.scalar_reads(live);
                    kept_rev.push(s.clone());
                } else {
                    stats.assignments_removed += 1;
                }
            }
            Stmt::Assign { target: LValue::Index(_, idx), value } => {
                for e in idx {
                    e.scalar_reads(live);
                }
                value.scalar_reads(live);
                kept_rev.push(s.clone());
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    a.scalar_reads(live);
                }
                kept_rev.push(s.clone());
            }
            Stmt::Do { label, var, ranges, mask, body } => {
                // Loop bodies execute repeatedly: a scalar read anywhere
                // in the body keeps defs from prior iterations alive, so
                // seed the body sweep with its own upward-exposed reads
                // (two-pass approximation, conservative).
                let mut body_live = live.clone();
                let mut reads = BTreeSet::new();
                for b in body {
                    b.visit_exprs(&mut |e| e.scalar_reads(&mut reads));
                }
                body_live.extend(reads);
                body_live.remove(var);
                let mut throwaway = DceStats::default();
                let new_body = sweep_stmts(body, &mut body_live, &mut throwaway);
                // Only count removals if the body sweep is sound here:
                // keep the conservative version (original body) unless
                // statements were provably dead even with the seeded
                // live set.
                stats.assignments_removed += throwaway.assignments_removed;
                if new_body.is_empty() {
                    stats.loops_removed += 1;
                    // Bounds and mask may still read scalars — but a
                    // removed loop no longer evaluates them.
                    continue;
                }
                live.extend(body_live);
                for r in ranges {
                    r.lo.scalar_reads(live);
                    r.hi.scalar_reads(live);
                    if let Some(st) = &r.step {
                        st.scalar_reads(live);
                    }
                }
                if let Some(m) = mask {
                    m.scalar_reads(live);
                }
                kept_rev.push(Stmt::Do {
                    label: label.clone(),
                    var: var.clone(),
                    ranges: ranges.clone(),
                    mask: mask.clone(),
                    body: new_body,
                });
            }
            Stmt::If { cond, then_body, else_body } => {
                let mut then_live = live.clone();
                let mut else_live = live.clone();
                let new_then = sweep_stmts(then_body, &mut then_live, stats);
                let new_else = sweep_stmts(else_body, &mut else_live, stats);
                if new_then.is_empty() && new_else.is_empty() {
                    stats.branches_folded += 1;
                    continue;
                }
                *live = then_live.union(&else_live).cloned().collect();
                cond.scalar_reads(live);
                kept_rev.push(Stmt::If {
                    cond: cond.clone(),
                    then_body: new_then,
                    else_body: new_else,
                });
            }
        }
    }
    kept_rev.reverse();
    kept_rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::interp::{Env, Interp};
    use orchestra_lang::parse_program;

    fn dce(src: &str) -> (Program, DceStats) {
        eliminate_dead_code(&parse_program(src).unwrap())
    }

    #[test]
    fn removes_unused_scalar_assignment() {
        let (p, stats) = dce("program t\n integer a, b\n a = 1\n b = 2\nend");
        assert_eq!(stats.assignments_removed, 2, "nothing reads a or b");
        assert!(p.body.is_empty());
    }

    #[test]
    fn keeps_scalars_feeding_array_writes() {
        let (p, stats) =
            dce("program t\n integer n = 2, a\n integer x[1..n]\n a = 7\n x[1] = a\nend");
        assert_eq!(stats.assignments_removed, 0);
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn removes_overwritten_def() {
        let (p, stats) =
            dce("program t\n integer n = 2, a\n integer x[1..n]\n a = 1\n a = 2\n x[1] = a\nend");
        assert_eq!(stats.assignments_removed, 1, "a = 1 is dead");
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn folds_decided_branch() {
        let (p, stats) = dce(
            "program t\n integer n = 4, m\n integer x[1..n]\n if (n > 2) { x[1] = 1 } else { x[2] = 2 }\nend",
        );
        assert_eq!(stats.branches_folded, 1);
        assert!(matches!(p.body[0], Stmt::Assign { .. }));
        let _ = p.decl("m");
    }

    #[test]
    fn removes_empty_loop() {
        let (p, stats) = dce("program t\n integer n = 4, dead\n do i = 1, n { dead = i }\nend");
        assert!(stats.loops_removed >= 1);
        assert!(p.body.is_empty());
    }

    #[test]
    fn keeps_reduction_feeding_output() {
        let src = "program t\n integer n = 4\n float s, x[1..n]\n do i = 1, n { s = s + x[i] }\n x[1] = s\nend";
        let (p, stats) = dce(src);
        assert_eq!(stats.total(), 0, "everything is live");
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn dce_preserves_semantics() {
        // Random-ish program with mixed dead and live code.
        let src = r#"
program t
  integer n = 6, dead1, live1
  float x[1..n], y[1..n]
  dead1 = 42
  live1 = 3
  do i = 1, n {
    x[i] = i * 1.0
  }
  if (n > 10) {
    do i = 1, n { y[i] = 99.0 }
  } else {
    do i = 1, n { y[i] = x[i] + live1 }
  }
end
"#;
        let orig = parse_program(src).unwrap();
        let (cleaned, stats) = eliminate_dead_code(&orig);
        assert!(stats.total() > 0);
        let e1 = Interp::new().run(&orig, &Env::new()).unwrap();
        let e2 = Interp::new().run(&cleaned, &Env::new()).unwrap();
        assert_eq!(e1["x"], e2["x"]);
        assert_eq!(e1["y"], e2["y"]);
    }

    #[test]
    fn fixpoint_cascades() {
        // b depends only on a; both die once the branch folds away.
        let src = "program t\n integer n = 1, a, b\n if (n > 5) { a = 1\n b = a\n }\nend";
        let (p, stats) = dce(src);
        assert!(p.body.is_empty());
        assert!(stats.branches_folded >= 1);
    }
}
