//! The UCLA climate model experiment (§5's textual results): doubling
//! the processor count with split, compared against the unsplit TAPER
//! runs.
//!
//! ```sh
//! cargo run --release --example climate_model
//! ```

use orchestra_apps::climate;
use orchestra_bench::{measure, Config};

fn main() {
    let w = climate::workload(&climate::paper_scale());
    println!("{} — {}", w.name, w.description);
    println!("serial work: {:.1}s of simulated compute\n", w.serial_work() / 1e6);

    let t512 = measure(&w, Config::Taper, 512);
    let s1024 = measure(&w, Config::TaperSplit, 1024);
    let t1024 = measure(&w, Config::Taper, 1024);

    println!("{:<26} {:>9} {:>6}", "configuration", "speedup", "eff");
    for (name, m) in [
        ("TAPER only, 512 procs", &t512),
        ("with split, 1024 procs", &s1024),
        ("without split, 1024 procs", &t1024),
    ] {
        println!("{:<26} {:>9.0} {:>5.0}%", name, m.speedup, m.efficiency * 100.0);
    }

    println!(
        "\nsplit lets the model use twice the processors at {:.1}× the speedup",
        s1024.speedup / t512.speedup
    );
    println!(
        "(paper: 850/445 = 1.9×); without split, doubling only reaches {:.1}×",
        t1024.speedup / t512.speedup
    );
    println!("because of the irregular task times in the cloud physics section.");

    // The kernel also flows through the compiler.
    let compiled = orchestra_core::compile(climate::kernel(), &Default::default());
    println!(
        "\ncompiler check: physics loop pipelined = {}, radiation split = {:?}",
        compiled.pipeline.is_some(),
        compiled.split.as_ref().map(|s| s.loop_splits.clone()).unwrap_or_default()
    );
}
