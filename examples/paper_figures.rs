//! Walks through the paper's Figures 1–5: the example programs, their
//! symbolic data descriptors, the split transformation's output, and
//! the interference categorization.
//!
//! ```sh
//! cargo run --release --example paper_figures
//! ```

use orchestra_descriptors::{descriptor_of_stmt, loop_iteration_descriptor, SymCtx};
use orchestra_lang::builder::{figure1_program, figure4_program};
use orchestra_lang::parse_program;
use orchestra_lang::pretty::{pretty_print, stmt_to_string};
use orchestra_split::{categorize, pipeline_loop, primitives_of, split_computation, SplitOptions};

fn main() {
    figure_1_and_2();
    figure_3();
    figure_4();
    figure_5();
}

/// Figure 1: the interacting computations; Figure 2: B after split.
fn figure_1_and_2() {
    println!("==== Figure 1: sample interacting computations ====\n");
    let prog = figure1_program(8);
    println!("{}", pretty_print(&prog));

    let ctx = SymCtx::from_program(&prog);
    let d_a = descriptor_of_stmt(&prog.body[0], &ctx);
    println!("descriptor of A:\n{d_a}\n");

    println!("==== Figure 2: code after split (B vs A's descriptor) ====\n");
    let result = split_computation(&prog, &prog.body[1..], &d_a, &SplitOptions::default());
    for piece in &result.pieces {
        println!("-- {} ({:?}) --", piece.name, piece.class);
        for s in &piece.stmts {
            print!("{}", stmt_to_string(s));
        }
        println!();
    }
}

/// Figure 3: A pipelined against its own previous iteration.
fn figure_3() {
    println!("==== Figure 3: code after split and pipeline ====\n");
    let prog = figure1_program(8);
    let r = pipeline_loop(&prog, &prog.body[0], 1, &SplitOptions::default()).expect("A pipelines");
    println!("pipelined loop `{}` over `{}` (depth {}):\n", r.loop_name, r.var, r.depth);
    print!("{}", stmt_to_string(&r.transformed));
    println!();
}

/// Figure 4: the simple split example with a reduction.
fn figure_4() {
    println!("==== Figure 4: simple example of split ====\n");
    let prog = figure4_program(8, 3);
    println!("{}", pretty_print(&prog));
    let ctx = SymCtx::from_program(&prog);
    let d_g = descriptor_of_stmt(&prog.body[0], &ctx);
    println!("descriptor of G:\n{d_g}\n");
    let iter = loop_iteration_descriptor(&prog.body[1], &ctx).expect("H is a loop");
    println!("descriptor of one iteration of H:\n{}\n", iter.descriptor);
    let result = split_computation(&prog, &prog.body[1..], &d_g, &SplitOptions::default());
    println!("after split (note the replicated reduction variables):\n");
    for piece in &result.pieces {
        println!("-- {} ({:?}) --", piece.name, piece.class);
        for s in &piece.stmts {
            print!("{}", stmt_to_string(s));
        }
        println!();
    }
}

/// Figure 5: the Linked-category refinement.
fn figure_5() {
    println!("==== Figure 5: interference categories ====\n");
    let src = r#"
program figure5
  integer n = 4
  float x[1..n], y[1..n], z[1..n], r[1..n], v[1..n], sum
  W: do i = 1, n { x[i] = 1.0 }
  A: do i = 1, n { y[i] = 2.0 }
  B: do i = 1, n { sum = sum + x[i] * y[i] }
  C: do i = 1, n { z[i] = y[i] }
  D: do i = 1, n { r[i] = sum }
  E: do i = 1, n { v[i] = 3.0 }
end
"#;
    let prog = parse_program(src).unwrap();
    let ctx = SymCtx::from_program(&prog);
    let d_w = descriptor_of_stmt(&prog.body[0], &ctx);
    let prims = primitives_of(&prog.body[1..], &ctx);
    let cats = categorize(&prims, &d_w);
    println!("splitting T = {{A..E}} with respect to W's descriptor:\n");
    for p in &prims {
        println!("  {:<4} → {}", p.name, cats.category_of(p.id));
    }
    println!();
}
