//! Psirrfan, the paper's x-ray tomography application (Figure 6):
//! compiles its kernel end-to-end and sweeps processor counts under the
//! three scheduling configurations.
//!
//! ```sh
//! cargo run --release --example tomography
//! ```

use orchestra_apps::psirrfan;
use orchestra_bench::{measure, Config};
use orchestra_core::Orchestrator;

fn main() {
    // 1. The compiler path: Psirrfan's kernel has the Figure 1 shape,
    //    so split and pipelining both apply.
    let kernel = psirrfan::kernel();
    let orch = Orchestrator::ncube2(64);
    let compiled = orch.compile(kernel);
    println!("== Psirrfan kernel through the compiler ==");
    println!(
        "  pipelined loop: {}",
        compiled.pipeline.as_ref().map(|p| p.loop_name.as_str()).unwrap_or("none")
    );
    if let Some(s) = &compiled.split {
        println!("  split loops:    {:?}", s.loop_splits);
        println!(
            "  pieces:         {:?}",
            s.pieces.iter().map(|p| p.name.as_str()).collect::<Vec<_>>()
        );
    }

    // 2. The runtime path: the production-scale workload, swept over
    //    processor counts (the Figure 6 experiment).
    let w = psirrfan::workload(&psirrfan::paper_scale());
    println!("\n== Figure 6 sweep ({}) ==", w.description);
    println!("{:>6} {:>10} {:>10} {:>16}", "procs", "static", "TAPER", "TAPER w/ split");
    for p in [128, 256, 512, 1024] {
        let st = measure(&w, Config::Static, p);
        let tp = measure(&w, Config::Taper, p);
        let sp = measure(&w, Config::TaperSplit, p);
        println!("{:>6} {:>10.0} {:>10.0} {:>16.0}", p, st.speedup, tp.speedup, sp.speedup);
    }
    println!("\n(speedups; the paper's shape: split sustains efficiency to 1024");
    println!(" processors while TAPER alone flattens past 512 and static trails)");
}
