//! Compares the grain-size policies (§4.1.1) on an irregular parallel
//! operation, demonstrates distributed TAPER's locality behaviour, and
//! runs the same graph on the simulated machine *and* on real threads,
//! printing predicted vs measured speedup.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison
//! ```

use orchestra_bench::splitter::{default_grain, run_join_split};
use orchestra_delirium::{DataAnno, DelirGraph, NodeKind};
use orchestra_machine::{CostDistribution, MachineConfig};
use orchestra_runtime::executor::{execute_graph, ExecutorOptions};
use orchestra_runtime::threaded::{execute_threaded, ExecutorBackend, SpinKernel};
use orchestra_runtime::{
    costs_of_node, execute_async, simulate_dist_taper, simulate_policy, OpOptions, PolicyKind,
};

fn main() {
    let p = 128;
    let cfg = MachineConfig::ncube2(p);

    // An irregular operation: clustered heavy tasks, as produced by a
    // data-dependent mask.
    let costs = CostDistribution::ClusteredBimodal {
        mean: 100.0,
        heavy_frac: 0.2,
        heavy_mult: 6.0,
        cluster: 64,
    }
    .sample(4096, 17);
    let total: f64 = costs.iter().sum();
    let ideal = total / p as f64;

    println!("irregular operation: 4096 tasks, {p} processors, ideal {ideal:.0} µs\n");
    println!("{:<22} {:>10} {:>6} {:>8} {:>9}", "policy", "finish µs", "eff", "chunks", "migrated");
    for kind in [
        PolicyKind::Static,
        PolicyKind::SelfSched,
        PolicyKind::Gss,
        PolicyKind::Factoring,
        PolicyKind::Taper,
        PolicyKind::TaperCostFn,
    ] {
        let r = simulate_policy(&cfg, p, &costs, kind, &OpOptions::default());
        println!(
            "{:<22} {:>10.0} {:>5.0}% {:>8} {:>9}",
            kind.name(),
            r.finish,
            ideal / r.finish * 100.0,
            r.chunks,
            r.migrated_tasks
        );
    }

    // Distributed TAPER: epoch tokens through the binary tree, chunk
    // re-assignment from laggards.
    println!("\ndistributed TAPER (epoch/token tree):");
    let d = simulate_dist_taper(&cfg, p, &costs, 64);
    println!(
        "  finish {:.0} µs (eff {:.0}%), locality {:.0}%, re-assignments {}",
        d.finish,
        ideal / d.finish * 100.0,
        d.locality * 100.0,
        d.reassignments
    );

    // A regular operation keeps near-perfect locality.
    let regular = CostDistribution::Uniform { mean: 100.0, spread: 0.1 }.sample(4096, 18);
    let dr = simulate_dist_taper(&cfg, p, &regular, 64);
    println!(
        "  on regular work: locality {:.0}%, re-assignments {} — \"most tasks\n   remain on the processor owning them\" (§4.1.1)",
        dr.locality * 100.0,
        dr.reassignments
    );

    simulated_vs_measured();
}

/// Runs one graph through both backends: the nCUBE-2 simulator
/// (speedup predicted by the cost model) and real `std::thread`
/// workers (speedup measured with wall clocks), for each chunk policy.
fn simulated_vs_measured() {
    let mut g = DelirGraph::new();
    let a = g.add_node("A", NodeKind::DataParallel { tasks: 512, mean_cost: 120.0, cv: 1.2 }, None);
    let b = g.add_node("B", NodeKind::DataParallel { tasks: 1024, mean_cost: 60.0, cv: 0.1 }, None);
    let m = g.add_node("M", NodeKind::Merge { cost: 40.0 }, None);
    g.add_edge(a, m, DataAnno::array("ra", 512));
    g.add_edge(b, m, DataAnno::array("rb", 1024));

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).clamp(2, 8);
    println!(
        "\nsimulated (nCUBE-2, {threads} procs) vs measured (real threads, {threads} workers):"
    );
    println!("{:<22} {:>13} {:>13} {:>12}", "policy", "sim speedup", "real speedup", "wall ms");
    let kernel = SpinKernel::default();
    for policy in [PolicyKind::SelfSched, PolicyKind::Gss, PolicyKind::Factoring, PolicyKind::Taper]
    {
        let opts = ExecutorOptions { policy, threads, ..ExecutorOptions::default() };
        let sim = execute_graph(&g, &MachineConfig::ncube2(threads), &opts).expect("valid graph");
        let real = execute_threaded(&g, &opts, &kernel).expect("valid graph");
        println!(
            "{:<22} {:>12.2}x {:>12.2}x {:>12.1}",
            policy.name(),
            sim.speedup(),
            real.measured_speedup(),
            real.wall_us / 1000.0,
        );
    }
    // Distributed TAPER on real threads: per-worker home queues with
    // epoch-token migration instead of a shared claim queue.
    let opts = ExecutorOptions {
        backend: ExecutorBackend::ThreadedDist,
        threads,
        ..ExecutorOptions::default()
    };
    let real = execute_threaded(&g, &opts, &kernel).expect("valid graph");
    println!(
        "{:<22} {:>13} {:>12.2}x {:>12.1}   locality {:.0}%, re-assignments {}",
        "dist-TAPER (threads)",
        "-",
        real.measured_speedup(),
        real.wall_us / 1000.0,
        real.locality * 100.0,
        real.reassignments,
    );
    // Cooperative futures backend: the same graph multiplexed as async
    // tasks over a small driver pool, yielding once per claimed chunk.
    let opts = ExecutorOptions {
        policy: PolicyKind::Taper,
        drivers: threads,
        ..ExecutorOptions::default()
    };
    let asy = execute_async(&g, &opts, &kernel).expect("valid graph");
    println!(
        "{:<22} {:>13} {:>12.2}x {:>12.1}   {} claims / {} yields, driver util {:.0}%",
        "async (futures)",
        "-",
        asy.measured_speedup(),
        asy.wall_us / 1000.0,
        asy.claims,
        asy.yields,
        asy.driver_utilization() * 100.0,
    );
    // Rayon-equivalent baseline: node A's irregular population under a
    // hand-rolled join splitter (lazy binary splitting, fixed grain,
    // steal-oldest) — no cost feedback, no adaptive chunking.
    let node_a = &g.nodes[0];
    let costs_a = costs_of_node(node_a, ExecutorOptions::default().seed);
    let grain = default_grain(costs_a.len(), threads);
    let ray = run_join_split(node_a, &costs_a, &kernel, threads, grain);
    println!(
        "{:<22} {:>13} {:>12} {:>12.1}   {} chunks / {} splits / {} steals (op A only)",
        "rayon-like (splitter)",
        "-",
        "-",
        ray.wall_us / 1000.0,
        ray.chunks,
        ray.splits,
        ray.steals,
    );
    println!(
        "  (measured speedup = Σ worker busy time / wall time; all runs\n   \
         schedule the same cost populations through the same policies)"
    );
}
