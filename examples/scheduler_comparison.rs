//! Compares the grain-size policies (§4.1.1) on an irregular parallel
//! operation, and demonstrates distributed TAPER's locality behaviour.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison
//! ```

use orchestra_machine::{CostDistribution, MachineConfig};
use orchestra_runtime::{simulate_dist_taper, simulate_policy, OpOptions, PolicyKind};

fn main() {
    let p = 128;
    let cfg = MachineConfig::ncube2(p);

    // An irregular operation: clustered heavy tasks, as produced by a
    // data-dependent mask.
    let costs = CostDistribution::ClusteredBimodal {
        mean: 100.0,
        heavy_frac: 0.2,
        heavy_mult: 6.0,
        cluster: 64,
    }
    .sample(4096, 17);
    let total: f64 = costs.iter().sum();
    let ideal = total / p as f64;

    println!("irregular operation: 4096 tasks, {p} processors, ideal {ideal:.0} µs\n");
    println!("{:<22} {:>10} {:>6} {:>8} {:>9}", "policy", "finish µs", "eff", "chunks", "migrated");
    for kind in [
        PolicyKind::Static,
        PolicyKind::SelfSched,
        PolicyKind::Gss,
        PolicyKind::Factoring,
        PolicyKind::Taper,
        PolicyKind::TaperCostFn,
    ] {
        let r = simulate_policy(&cfg, p, &costs, kind, &OpOptions::default());
        println!(
            "{:<22} {:>10.0} {:>5.0}% {:>8} {:>9}",
            kind.name(),
            r.finish,
            ideal / r.finish * 100.0,
            r.chunks,
            r.migrated_tasks
        );
    }

    // Distributed TAPER: epoch tokens through the binary tree, chunk
    // re-assignment from laggards.
    println!("\ndistributed TAPER (epoch/token tree):");
    let d = simulate_dist_taper(&cfg, p, &costs, 64);
    println!(
        "  finish {:.0} µs (eff {:.0}%), locality {:.0}%, re-assignments {}",
        d.finish,
        ideal / d.finish * 100.0,
        d.locality * 100.0,
        d.reassignments
    );

    // A regular operation keeps near-perfect locality.
    let regular = CostDistribution::Uniform { mean: 100.0, spread: 0.1 }.sample(4096, 18);
    let dr = simulate_dist_taper(&cfg, p, &regular, 64);
    println!(
        "  on regular work: locality {:.0}%, re-assignments {} — \"most tasks\n   remain on the processor owning them\" (§4.1.1)",
        dr.locality * 100.0,
        dr.reassignments
    );
}
