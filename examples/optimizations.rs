//! The companion source-to-source optimizations §3 combines with split:
//! loop fusion, loop interchange, and symbolic-analysis-driven dead code
//! elimination.
//!
//! ```sh
//! cargo run --release --example optimizations
//! ```

use orchestra_analysis::dce::eliminate_dead_code;
use orchestra_descriptors::SymCtx;
use orchestra_lang::parse_program;
use orchestra_lang::pretty::{pretty_print, stmt_to_string};
use orchestra_split::{can_fuse, can_interchange, fuse_adjacent, interchange};

fn main() {
    fusion_demo();
    interchange_demo();
    dce_demo();
}

fn fusion_demo() {
    println!("==== loop fusion (descriptor-driven legality) ====\n");
    let src = r#"
program fusion
  integer n = 8
  float a[1..n], b[1..n], c[0..n], d[1..n]
  do i = 1, n { a[i] = i * 1.0 }
  do j = 1, n { b[j] = a[j] * 2.0 }
  do k = 1, n { c[k] = b[k] + 1.0 }
  do m = 1, n { d[m] = c[m - 1] }
end
"#;
    let p = parse_program(src).unwrap();
    let ctx = SymCtx::from_program(&p);
    let (fused, count) = fuse_adjacent(&p.body, &ctx);
    println!("fused {count} adjacent loop pairs:");
    for s in &fused {
        print!("{}", stmt_to_string(s));
    }

    // The paper's Figure 1 pair must NOT fuse (B reads columns A's
    // later iterations write).
    let fig1 = orchestra_lang::builder::figure1_program(8);
    let fig1_ctx = SymCtx::from_program(&fig1);
    println!(
        "\nFigure 1's A and B: {}",
        match can_fuse(&fig1.body[0], &fig1.body[1], &fig1_ctx) {
            Ok(()) => "fusable (unexpected!)".to_string(),
            Err(e) => format!("refused — {e}"),
        }
    );
}

fn interchange_demo() {
    println!("\n==== loop interchange ====\n");
    let legal = parse_program(
        "program t\n integer n = 6\n float a[0..n, 0..n]\n L: do i = 1, n { do j = 1, n { a[i, j] = a[i - 1, j - 1] } }\nend",
    )
    .unwrap();
    let ctx = SymCtx::from_program(&legal);
    println!("dependence direction (<, <):");
    print!("{}", stmt_to_string(&legal.body[0]));
    println!("→ interchange legal; result:");
    print!("{}", stmt_to_string(&interchange(&legal.body[0], &ctx).unwrap()));

    let illegal = parse_program(
        "program t\n integer n = 6\n float a[0..n, 0..n + 1]\n L: do i = 1, n { do j = 1, n { a[i, j] = a[i - 1, j + 1] } }\nend",
    )
    .unwrap();
    let ctx2 = SymCtx::from_program(&illegal);
    println!(
        "\ndependence direction (<, >): {}",
        match can_interchange(&illegal.body[0], &ctx2) {
            Ok(()) => "accepted (unexpected!)".to_string(),
            Err(e) => format!("refused — {e}"),
        }
    );
}

fn dce_demo() {
    println!("\n==== dead code elimination ====\n");
    let src = r#"
program dce
  integer n = 8, unused, temp
  float x[1..n], y[1..n]
  unused = 999
  temp = 3
  do i = 1, n { x[i] = i * 1.0 }
  if (n > 100) {
    do i = 1, n { y[i] = 0.0 }
  } else {
    do i = 1, n { y[i] = x[i] + temp }
  }
end
"#;
    let p = parse_program(src).unwrap();
    let (cleaned, stats) = eliminate_dead_code(&p);
    println!(
        "removed {} assignments, {} loops, folded {} branches:",
        stats.assignments_removed, stats.loops_removed, stats.branches_folded
    );
    println!("{}", pretty_print(&cleaned));
}
