//! Quickstart: compile an MF program with the split transformation and
//! execute it on the simulated multiprocessor.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use orchestra_core::{summarize_pieces, Orchestrator};
use orchestra_lang::pretty::pretty_print;

fn main() {
    // The paper's Figure 1 program: a masked reconstruction loop A and
    // a post-processing loop B that reads what A writes.
    let source = r#"
program quickstart
  integer n = 64
  integer mask[1..n]
  float result[1..n], q[1..n, 1..n], output[1..n, 1..n]

  A: do col = 1, n where (mask[col] <> 0) {
    do i = 1, n {
      result[i] = q[col, i] * 0.5 + q[i, i]
    }
    do i = 1, n {
      q[i, col] = result[i]
    }
  }
  B: do i = 1, n {
    do j = 1, n {
      output[j, i] = f(q[j, i])
    }
  }
end
"#;

    let orch = Orchestrator::ncube2(256);
    let compiled = orch.compile_source(source).expect("source parses");

    println!("== pieces exposed by split ==");
    for (name, class) in summarize_pieces(&compiled) {
        println!("  {name:<24} {class}");
    }

    println!("\n== transformed program ==");
    println!("{}", pretty_print(&compiled.transformed));

    let report = orch.run(&compiled);
    let baseline = orch.run_baseline(&compiled.original);
    println!("== execution on a 256-processor nCUBE-2 model ==");
    println!("  baseline (barriers): {:>10.0} µs", baseline.finish);
    println!("  orchestrated:        {:>10.0} µs", report.finish);
    println!("  (at this micro-kernel scale the merge overhead is not recouped;");
    println!("   run --example tomography or climate_model for the production-");
    println!("   scale workloads where orchestration wins, as in the paper)");
    for node in &report.nodes {
        println!(
            "    {:<22} start {:>8.0}  finish {:>8.0}  procs {}",
            node.name, node.start, node.finish, node.procs
        );
    }
}
