#![warn(missing_docs)]
//! # orchestration
//!
//! Umbrella crate for the reproduction of Graham, Lucco & Sharp,
//! *"Orchestrating Interactions Among Parallel Computations"* (PLDI 1993).
//!
//! This crate simply re-exports the workspace members under short names;
//! see the individual crates for the actual functionality:
//!
//! * [`lang`] — the MF mini-Fortran front end (lexer, parser, interpreter)
//! * [`analysis`] — CFG/SSA construction and symbolic analysis
//! * [`descriptors`] — symbolic data descriptors and interference
//! * [`split`] — the split and pipelining transformations
//! * [`delirium`] — the coarse-grained dataflow (coordination) graph
//! * [`machine`] — the distributed-memory machine simulator
//! * [`runtime`] — TAPER, distributed TAPER, and processor allocation
//! * [`apps`] — Psirrfan / climate / EMU / vortex workload generators
//! * [`core`] — the end-to-end orchestration pipeline

pub use orchestra_analysis as analysis;
pub use orchestra_apps as apps;
pub use orchestra_core as core;
pub use orchestra_delirium as delirium;
pub use orchestra_descriptors as descriptors;
pub use orchestra_lang as lang;
pub use orchestra_machine as machine;
pub use orchestra_runtime as runtime;
pub use orchestra_split as split;
