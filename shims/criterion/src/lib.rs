//! Offline shim for the `criterion` crate: a plain warm-up + sample
//! timing loop printing mean/min per benchmark. No statistics, plots,
//! or baselines — just enough to run this workspace's `[[bench]]`
//! targets and eyeball relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id from just a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by benchmark functions.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up pass then `samples` timed passes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        let mean = total / self.samples as u32;
        println!("    mean {mean:>12.3?}   min {best:>12.3?}   ({} samples)", self.samples);
    }
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { crit: self, name }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        println!("  bench {id}");
        f(&mut Bencher { samples: self.sample_size });
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    crit: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.crit.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        println!("  bench {}/{id}", self.name);
        f(&mut Bencher { samples: self.crit.sample_size });
        self
    }

    /// Runs one named benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("  bench {}/{id}", self.name);
        f(&mut Bencher { samples: self.crit.sample_size }, input);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// The bench-target entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; the
            // shim ignores every argument.
            $($group();)+
        }
    };
}
