//! Case driving: deterministic per-test RNG, reject accounting, panic
//! with the generated inputs on failure.

use crate::prelude::ProptestConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and does not count.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// Per-run generation state handed to strategies.
pub struct TestRunner {
    /// The RNG strategies draw from.
    pub rng: StdRng,
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `config.cases` successful cases of `case`, seeding the RNG from
/// the test name (deterministic across runs). Set `PROPTEST_SEED` to an
/// integer to explore a different deterministic stream.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRunner) -> (Result<(), TestCaseError>, String),
{
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x0c4e_57a1_9370_ca5e);
    let seed = base ^ fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_idx = 0u64;
    while passed < config.cases {
        let mut runner = TestRunner {
            rng: StdRng::seed_from_u64(seed.wrapping_add(case_idx.wrapping_mul(0x9E37_79B9))),
        };
        case_idx += 1;
        let (result, desc) = case(&mut runner);
        match result {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest shim: test `{name}` rejected {rejected} cases \
                         (last assumption: {why}) without reaching {} passes",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest shim: test `{name}` failed at case #{case_idx}\n\
                     {msg}\ninputs: {desc}\n\
                     (no shrinking in the shim; re-run reproduces this case)"
                );
            }
        }
    }
}
