//! The `Strategy` trait and combinators (shim: generation only, no
//! shrinking).

use crate::test_runner::TestRunner;
use rand::Rng;
use std::fmt::Debug;
use std::ops::Range;
use std::sync::Arc;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive structures: `self` is the leaf case, `recurse` builds
    /// the composite case from the strategy for sub-structures. The
    /// shim bounds nesting by `depth` and ignores the two size hints.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let composite = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), composite]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn new_value_dyn(&self, runner: &mut TestRunner) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn new_value_dyn(&self, runner: &mut TestRunner) -> S::Value {
        self.new_value(runner)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.new_value_dyn(runner)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn new_value(&self, runner: &mut TestRunner) -> T::Value {
        (self.f)(self.inner.new_value(runner)).new_value(runner)
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        let i = runner.rng.gen_range(0..self.options.len());
        self.options[i].new_value(runner)
    }
}

/// Numeric range strategies.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

/// Tuple strategies: each component generated in order.
macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.new_value(runner),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// A `Vec<S>` generates one value per element strategy.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        self.iter().map(|s| s.new_value(runner)).collect()
    }
}

/// Element count for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let n = runner.rng.gen_range(self.size.lo..self.size.hi);
        (0..n).map(|_| self.element.new_value(runner)).collect()
    }
}

/// See [`crate::sample::select`].
pub struct Select<T: Clone + Debug> {
    pub(crate) options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.options[runner.rng.gen_range(0..self.options.len())].clone()
    }
}

/// Uniformly random booleans (`proptest::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn new_value(&self, runner: &mut TestRunner) -> bool {
        runner.rng.gen::<bool>()
    }
}

/// Types with a canonical whole-domain strategy (shim of `Arbitrary`).
pub trait ArbitraryValue: Sized + Debug {
    /// Generates one value over the type's natural domain.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.rng.gen::<bool>()
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(runner: &mut TestRunner) -> u64 {
        runner.rng.gen::<u64>()
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(runner: &mut TestRunner) -> f64 {
        runner.rng.gen::<f64>()
    }
}

/// The canonical strategy for `T` (shim of `proptest::arbitrary::any`).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}
