//! Offline shim for the `proptest` crate: deterministic case
//! generation with the `Strategy` combinators this workspace uses, no
//! shrinking, no persistence. A failing case panics with the `Debug`
//! rendering of the generated inputs.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — collection strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A `Vec` of values from `element`, with `size` elements
    /// (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// `proptest::bool` — boolean strategies.
pub mod bool {
    /// Uniformly random booleans.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

/// `proptest::sample` — sampling from existing collections.
pub mod sample {
    use crate::strategy::Select;

    /// Uniformly selects one element of `options` (which must be
    /// non-empty).
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires a non-empty vector");
        Select { options }
    }
}

/// `proptest::prelude` — the usual imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Per-test configuration (shim: only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum rejected cases (`prop_assume!`) before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }
}

/// Defines property tests. Shim of `proptest::proptest!`: supports an
/// optional `#![proptest_config(..)]` header followed by `fn` items
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::prelude::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(config, stringify!($name), |__runner| {
                let __vals = ($($crate::strategy::Strategy::new_value(&($strat), __runner),)+);
                let __desc = format!("{:#?}", __vals);
                let ($($pat,)+) = __vals;
                let __res: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                (__res, __desc)
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::prelude::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).into(),
            ));
        }
    };
}

/// Chooses uniformly among the listed strategies (all must yield the
/// same value type). Weights are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
