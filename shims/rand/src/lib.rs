//! Offline shim for the `rand` crate: the subset this workspace uses.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a different
//! generator than upstream `rand`'s ChaCha12, but every caller in this
//! repository only relies on determinism, not on the exact stream.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seeds the generator from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling of a value from a range type (shim of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw generator interface (shim of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (shim of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniform sample of `T` over its natural domain
    /// (`f64` ∈ [0,1), integers over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`] (shim of the `Standard`
/// distribution).
pub trait Standard {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_ranges!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// Named generators (shim of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-8..8);
            assert!((-8..8).contains(&v));
            let u = r.gen_range(1usize..=9);
            assert!((1..=9).contains(&u));
            let f = r.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
            let g = r.gen::<f64>();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn range_distribution_covers_domain() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
