//! End-to-end smoke tests for `orchestrad`: real unix sockets, real
//! concurrent tenants, bitwise-checked results.
//!
//! The daemon's whole promise is that sharing one worker pool with
//! other tenants changes *when* a graph finishes, never *what* it
//! computes — so every test here compares wire results against a
//! locally executed sequential reference, bit for bit.

mod common;

use common::shapes;
use orchestra_daemon::{AdmissionPolicy, Client, ClientError, Daemon, DaemonConfig, JobOptions};
use orchestra_delirium::DelirGraph;
use orchestra_runtime::executor::ExecutorOptions;
use orchestra_runtime::threaded::{execute_sequential, ExecutorBackend, SpinKernel};
use orchestra_runtime::{FaultPlan, FaultTrigger, PolicyKind};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Wall-clock scale served by test daemons (small: CI time, not
/// fidelity, is the constraint here).
const SCALE: f64 = 0.5;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("orchestrad-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn daemon(tag: &str, workers: usize, admission: AdmissionPolicy) -> (Daemon, PathBuf) {
    let dir = scratch(tag);
    let cfg = DaemonConfig {
        socket: dir.join("orchestrad.sock"),
        workers,
        admission,
        kernel_scale: SCALE,
        measure_calibration: false,
        chaos: None,
    };
    let d = Daemon::start(cfg).expect("daemon starts");
    (d, dir)
}

/// The sequential reference for a job as the daemon would run it:
/// same graph, seed, policy, and kernel scale.
fn reference(g: &DelirGraph, opts: &JobOptions) -> Vec<Vec<f64>> {
    let exec = ExecutorOptions {
        backend: ExecutorBackend::Threaded,
        policy: opts.policy,
        seed: opts.seed,
        threads: 1,
        ..ExecutorOptions::default()
    };
    execute_sequential(g, &exec, &SpinKernel::with_scale(SCALE)).expect("reference run").outputs
}

/// Two tenants submit different graphs concurrently over the socket;
/// both must get results bitwise-identical to their sequential
/// references, through all the pool sharing and re-equalization.
#[test]
fn two_concurrent_tenants_get_bitwise_sequential_results() {
    let (mut d, dir) = daemon("two-tenants", 4, AdmissionPolicy::default());
    let socket = d.socket().to_path_buf();
    let tenants: Vec<(&str, DelirGraph, u64)> = vec![
        ("alice", shapes::flat(192, 40.0, 0.6), common::test_seed()),
        ("bob", shapes::diamond(4.0, (96, 30.0, 0.4), (64, 50.0, 0.2), 2.0), 0x0b0b),
    ];
    let handles: Vec<_> = tenants
        .into_iter()
        .map(|(name, graph, seed)| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let opts = JobOptions { seed, ..JobOptions::default() };
                let mut c = Client::connect(&socket, name, 1.0).expect("connect");
                let job = c.submit(&graph, name, &opts).expect("submit");
                let result = c.wait(job).expect("job completes");
                let expect = reference(&graph, &opts);
                assert_eq!(result.outputs.len(), expect.len(), "{name}: op count");
                for (out, exp) in result.outputs.iter().zip(&expect) {
                    assert_eq!(
                        &out.values, exp,
                        "{name}: op {} diverged from the sequential reference",
                        out.name
                    );
                }
                assert_eq!(result.attempts, 1, "{name}: clean run");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("tenant thread");
    }
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancelling one tenant's long-running graph frees its worker
/// partition: the cross-graph equalizer widens the surviving tenant's
/// grant to the whole pool, observable through `stats`.
#[test]
fn cancelled_tenant_frees_its_partition_to_the_survivor() {
    let (mut d, dir) = daemon(
        "cancel-frees",
        4,
        AdmissionPolicy { max_inflight: 2, ..AdmissionPolicy::default() },
    );
    let socket = d.socket().to_path_buf();
    // Long enough that cancellation lands mid-run: a few hundred ms
    // of wall-clock even split across the whole pool.
    let long = shapes::flat(2048, 500_000.0, 0.1);
    let opts = JobOptions { seed: 7, ..JobOptions::default() };

    let mut alice = Client::connect(&socket, "alice", 1.0).expect("connect alice");
    let job_a = alice.submit(&long, "long-a", &opts).expect("submit a");
    wait_for(&mut alice, |rows| rows.iter().any(|r| r.job == job_a && r.state == "running"));

    let mut bob = Client::connect(&socket, "bob", 1.0).expect("connect bob");
    let job_b = bob.submit(&long, "long-b", &opts).expect("submit b");
    wait_for(&mut bob, |rows| rows.iter().any(|r| r.job == job_b && r.state == "running"));

    // Alice ran alone first, so she holds the full pool (widen-only);
    // Bob entered a busy pool and got the equalized share of it.
    let rows = bob.stats().expect("stats").1;
    let grant_b = rows.iter().find(|r| r.job == job_b).expect("bob's row").grant;
    assert!(grant_b < 4, "bob entered a shared pool and must not own all of it, got {grant_b}");

    // Cancel alice: her workers must flow to bob via re-equalization.
    alice.cancel(job_a).expect("cancel delivered");
    let err = alice.wait(job_a).expect_err("cancelled job yields no result");
    assert!(
        matches!(&err, ClientError::Remote(m) if m == "execution cancelled"),
        "unexpected wait outcome: {err}"
    );
    wait_for(&mut bob, |rows| rows.iter().any(|r| r.job == job_b && r.grant == 4));

    bob.cancel(job_b).expect("cleanup cancel");
    let _ = bob.wait(job_b);
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Polls `stats` until the predicate holds (10 s cap — generous for
/// loaded CI hosts, instant in the common case).
fn wait_for(c: &mut Client, pred: impl Fn(&[orchestra_daemon::JobRow]) -> bool) {
    let t0 = Instant::now();
    loop {
        let rows = c.stats().expect("stats").1;
        if pred(&rows) {
            return;
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "stats predicate never held: {rows:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A checkpointed tenant graph survives a worker-pool crash: the
/// daemon's resumable execution restores from the latest snapshot and
/// the final outputs stay bitwise-correct.
#[test]
fn checkpointed_job_survives_a_worker_pool_crash() {
    let dir = scratch("crash-resume");
    let cfg = DaemonConfig {
        socket: dir.join("orchestrad.sock"),
        workers: 2,
        admission: AdmissionPolicy::default(),
        kernel_scale: SCALE,
        measure_calibration: false,
        // Kill the pool after worker 0's 24th claim — mid-graph, past
        // the first claim-cadence snapshot.
        chaos: Some(FaultPlan::crash(0, FaultTrigger::AfterClaims(24))),
    };
    let mut d = Daemon::start(cfg).expect("daemon starts");
    // Tasks must dwarf a snapshot commit's fsync, or the worker that
    // wins the writer slot starves while its sibling drains the queue
    // and the claim-24 trigger never fires (see the pinned chaos
    // guard test for the same trap).
    let graph = shapes::flat(256, 2_000_000.0, 0.3);
    let opts = JobOptions {
        seed: common::test_seed(),
        policy: PolicyKind::SelfSched,
        checkpoint_dir: Some(dir.join("snapshots").to_string_lossy().into_owned()),
        ..JobOptions::default()
    };
    let mut c = Client::connect(d.socket(), "carol", 1.0).expect("connect");
    let job = c.submit(&graph, "resumable", &opts).expect("submit");
    let result = c.wait(job).expect("job survives the crash");
    assert_eq!(result.attempts, 2, "the injected crash must force exactly one resume");
    assert!(result.resumed_tasks > 0, "the resume must restore work from a snapshot");
    let expect = reference(&graph, &opts);
    for (out, exp) in result.outputs.iter().zip(&expect) {
        assert_eq!(&out.values, exp, "op {} diverged after recovery", out.name);
    }
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control: oversized graphs are rejected outright, the
/// in-flight cap queues submissions, and queued jobs run (and answer
/// their `wait`s) once capacity frees up.
#[test]
fn admission_rejects_queues_and_pumps() {
    let (mut d, dir) = daemon(
        "admission",
        2,
        AdmissionPolicy { max_inflight: 1, max_total_tasks: 4096, max_graph_tasks: 512 },
    );
    let mut c = Client::connect(d.socket(), "dave", 1.0).expect("connect");

    let huge = shapes::flat(1024, 1.0, 0.0);
    let err = c.submit(&huge, "huge", &JobOptions::default()).expect_err("over the limit");
    assert!(matches!(&err, ClientError::Remote(m) if m.contains("per-graph limit")), "{err}");

    let opts = JobOptions { seed: 11, ..JobOptions::default() };
    let g = shapes::flat(256, 200_000.0, 0.2);
    let first = c.submit(&g, "first", &opts).expect("first admitted");
    let second = c.submit(&g, "second", &opts).expect("second admitted");
    // With max_inflight = 1 the second job must queue behind the first.
    let rows = c.stats().expect("stats").1;
    let row = rows.iter().find(|r| r.job == second).expect("second's row");
    assert!(
        row.state == "queued" || row.state == "running" || row.state == "done",
        "unexpected state {}",
        row.state
    );
    let expect = reference(&g, &opts);
    for job in [first, second] {
        let result = c.wait(job).expect("both jobs complete");
        for (out, exp) in result.outputs.iter().zip(&expect) {
            assert_eq!(&out.values, exp, "job {job} op {} diverged", out.name);
        }
    }
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An expired deadline aborts the job with the runtime's
/// `DeadlineExceeded` message instead of hanging the tenant.
#[test]
fn expired_deadline_aborts_the_job() {
    let (mut d, dir) = daemon("deadline", 2, AdmissionPolicy::default());
    let mut c = Client::connect(d.socket(), "erin", 1.0).expect("connect");
    let g = shapes::flat(2048, 500_000.0, 0.1);
    let opts = JobOptions { deadline: Some(Duration::from_millis(1)), ..JobOptions::default() };
    let job = c.submit(&g, "doomed", &opts).expect("submit");
    let err = c.wait(job).expect_err("deadline must fire");
    assert!(
        matches!(&err, ClientError::Remote(m) if m == "execution deadline exceeded"),
        "unexpected outcome: {err}"
    );
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `shutdown` drains: running work finishes first, new connections are
/// refused after, and the whole sequence completes promptly.
#[test]
fn shutdown_drains_admitted_work_then_refuses_connections() {
    let (d, dir) = daemon("drain", 2, AdmissionPolicy::default());
    let socket = d.socket().to_path_buf();
    let opts = JobOptions { seed: 23, ..JobOptions::default() };
    let g = shapes::flat(128, 300.0, 0.2);
    let mut c = Client::connect(&socket, "frank", 1.0).expect("connect");
    let job = c.submit(&g, "draining", &opts).expect("submit");

    let t0 = Instant::now();
    let mut closer = Client::connect(&socket, "ops", 1.0).expect("connect closer");
    closer.shutdown().expect("drain completes");
    assert!(t0.elapsed() < Duration::from_secs(30), "drain took {:?}", t0.elapsed());

    // The drained daemon finished the admitted job before exiting —
    // the result is still served to the already-open session.
    let result = c.wait(job).expect("admitted work survives the drain");
    let expect = reference(&g, &opts);
    for (out, exp) in result.outputs.iter().zip(&expect) {
        assert_eq!(&out.values, exp, "op {} diverged", out.name);
    }

    // New connections are refused once the listener is gone.
    let t0 = Instant::now();
    let refused = loop {
        match Client::connect(&socket, "late", 1.0) {
            Err(_) => break true,
            Ok(_) if t0.elapsed() > Duration::from_secs(10) => break false,
            Ok(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    assert!(refused, "the drained daemon must stop accepting connections");
    drop(d);
    let _ = std::fs::remove_dir_all(&dir);
}
