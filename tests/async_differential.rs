//! Differential tests for the async cooperative backend.
//!
//! Beyond the cross-backend bitwise identity (see
//! `backend_differential.rs`), the cooperative executor has properties
//! of its own worth pinning:
//!
//! * exactly-once execution under *oversubscribed* claimer futures
//!   (every op spawns more claimers than drivers, so claim
//!   interleavings are denser than preemptive threads produce);
//! * nonzero yields — every executed chunk is followed by a
//!   cooperative yield, the backend's defining scheduling event;
//! * full determinism at one driver: FIFO run queue + cost-hint-fed
//!   TAPER means the entire schedule (chunk counts, yield counts)
//!   replays identically;
//! * per-op policy state: TAPER's µ/σ sampling starts fresh for every
//!   operation (DESIGN §12), so an upstream op's variance cannot leak
//!   into a downstream op's chunk sizes.
//!
//! Graph shapes come from the shared builders in `common::shapes`.

mod common;

use common::shapes;
use orchestra_delirium::DelirGraph;
use orchestra_runtime::chunking::PolicyKind;
use orchestra_runtime::executor::ExecutorOptions;
use orchestra_runtime::threaded::{execute_sequential, SpinKernel};
use orchestra_runtime::{execute_async, AsyncRun};

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::SelfSched,
    PolicyKind::Gss,
    PolicyKind::Factoring,
    PolicyKind::Taper,
    PolicyKind::TaperCostFn,
];

fn flat_graph() -> (DelirGraph, ExecutorOptions) {
    (shapes::flat(256, 1.5, 0.6), ExecutorOptions { drivers: 2, ..ExecutorOptions::default() })
}

fn dag_graph() -> (DelirGraph, ExecutorOptions) {
    let g = shapes::diamond(4.0, (160, 2.0, 0.9), (96, 1.5, 0.2), 2.0);
    (g, ExecutorOptions { drivers: 2, ..ExecutorOptions::default() })
}

fn pipeline_graph() -> (DelirGraph, ExecutorOptions) {
    let (g, pipeline_iters) = shapes::pipeline((48, 2.0, 0.5), (12, 2.0, 0.5), 4, Some(64));
    (g, ExecutorOptions { drivers: 2, pipeline_iters, ..ExecutorOptions::default() })
}

/// The skewed shape: a two-population mixture (many cheap tasks, a few
/// 6× heavier ones).
fn mixture_graph() -> (DelirGraph, ExecutorOptions) {
    let g = shapes::mixture(&[(90, 1.0, 0.1), (30, 6.0, 0.8)], true);
    (g, ExecutorOptions { drivers: 2, ..ExecutorOptions::default() })
}

fn graphs() -> Vec<(&'static str, DelirGraph, ExecutorOptions)> {
    let (g0, o0) = flat_graph();
    let (g1, o1) = dag_graph();
    let (g2, o2) = pipeline_graph();
    let (g3, o3) = mixture_graph();
    vec![("flat", g0, o0), ("dag", g1, o1), ("pipeline", g2, o2), ("mixture", g3, o3)]
}

#[test]
fn every_policy_executes_each_task_exactly_once() {
    let kernel = SpinKernel::with_scale(2.0);
    for (name, g, opts) in graphs() {
        for policy in POLICIES {
            let opts = ExecutorOptions { policy, ..opts.clone() };
            let run = execute_async(&g, &opts, &kernel).unwrap();
            for (op, counts) in run.ops.iter().zip(&run.exec_counts) {
                assert!(
                    counts.iter().all(|&c| c == 1),
                    "{name}/{}: op {} task exec counts {counts:?}",
                    policy.name(),
                    op.name,
                );
            }
            let total: u64 = run.exec_counts.iter().map(|c| c.len() as u64).sum();
            assert_eq!(
                run.stats.total_tasks(),
                total,
                "{name}/{}: driver task accounting mismatch",
                policy.name()
            );
        }
    }
}

#[test]
fn async_results_bit_identical_to_sequential() {
    let kernel = SpinKernel::with_scale(2.0);
    for (name, g, opts) in graphs() {
        let seq = execute_sequential(&g, &opts, &kernel).unwrap();
        for policy in POLICIES {
            let opts = ExecutorOptions { policy, ..opts.clone() };
            let run = execute_async(&g, &opts, &kernel).unwrap();
            assert_eq!(seq.outputs.len(), run.outputs.len(), "{name}: op count");
            for (i, (s, t)) in seq.outputs.iter().zip(&run.outputs).enumerate() {
                for (j, (a, b)) in s.iter().zip(t).enumerate() {
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "{name}/{}: op {} task {j}: sequential {a:?} != async {b:?}",
                        policy.name(),
                        seq.op_names[i],
                    );
                }
            }
        }
    }
}

#[test]
fn skewed_workload_yields_at_chunk_boundaries() {
    // The acceptance shape: on the skewed mixture every executed chunk
    // is followed by a cooperative yield, so yields are nonzero and
    // exactly one per claim.
    let (g, opts) = mixture_graph();
    let run = execute_async(&g, &opts, &SpinKernel::with_scale(2.0)).unwrap();
    assert!(run.yields > 0, "skewed workload produced no yields");
    assert_eq!(run.claims, run.yields, "one yield per executed chunk");
    let m = run.ops.iter().find(|o| o.name == "M").unwrap();
    assert!(m.yields > 0 && m.chunks == m.yields, "op M: {} chunks, {} yields", m.chunks, m.yields);
    assert!(run.polls >= run.claims + run.spawned as u64);
}

#[test]
fn single_driver_schedule_is_deterministic() {
    // One driver = FIFO run queue + cost-hint-fed TAPER: the whole
    // schedule must replay exactly, not just the results.
    let kernel = SpinKernel::with_scale(2.0);
    for (name, g, opts) in graphs() {
        let opts = ExecutorOptions { drivers: 1, policy: PolicyKind::Taper, ..opts };
        let a = execute_async(&g, &opts, &kernel).unwrap();
        let b = execute_async(&g, &opts, &kernel).unwrap();
        let sched_of = |r: &AsyncRun| -> Vec<(String, u64, u64)> {
            r.ops.iter().map(|o| (o.name.clone(), o.chunks, o.yields)).collect()
        };
        assert_eq!(sched_of(&a), sched_of(&b), "{name}: schedule not deterministic");
        assert_eq!(a.claims, b.claims, "{name}");
        assert_eq!(a.yields, b.yields, "{name}");
    }
}

/// DESIGN §12's per-op sampling contract, asserted at the layer every
/// backend shares: each operation wraps a *fresh*
/// `PolicyKind::instantiate` in its own `ChunkQueue`, so draining a
/// high-variance op A first must leave op B's chunk sequence exactly
/// what it is when B runs alone. The counterfactual is also pinned: a
/// policy that *did* inherit A's skewed µ/σ samples carves B
/// differently, so the equality above is evidence of isolation, not
/// of insensitivity.
#[test]
fn taper_sampling_state_is_per_op() {
    use orchestra_runtime::threaded::queue::ChunkQueue;
    use orchestra_runtime::OnlineStats;
    // Deterministic single-claimant drain, feeding the policy each
    // chunk's costs exactly like the async backend's control plane.
    let drain = |queue: &ChunkQueue, costs: &[f64]| -> Vec<(usize, usize)> {
        let mut seq = Vec::new();
        while let Some(c) = queue.claim() {
            let mut stats = OnlineStats::new();
            for cost in &costs[c.start..c.start + c.len] {
                stats.observe(*cost);
            }
            queue.observe_chunk(c.start, c.len, &stats);
            seq.push((c.start, c.len));
        }
        seq
    };
    // A: heavily skewed costs. B: mildly varying costs.
    let a_costs: Vec<f64> = (0..64).map(|i| if i % 4 == 0 { 12.0 } else { 0.1 }).collect();
    let b_costs: Vec<f64> = (0..200).map(|i| if i % 3 == 0 { 1.3 } else { 1.0 }).collect();

    // What every backend does: op A and op B each get a fresh policy.
    let qa = ChunkQueue::new(PolicyKind::Taper.instantiate(64), 64, 4);
    let a_seq = drain(&qa, &a_costs);
    let qb = ChunkQueue::new(PolicyKind::Taper.instantiate(200), 200, 4);
    let b_after_a = drain(&qb, &b_costs);

    let qb_alone = ChunkQueue::new(PolicyKind::Taper.instantiate(200), 200, 4);
    let b_alone = drain(&qb_alone, &b_costs);
    assert_eq!(b_after_a, b_alone, "per-op policy state leaked across operations");

    // Counterfactual: a policy pre-loaded with A's skewed samples
    // (what carrying state across ops would mean) schedules B
    // differently — TAPER starts from a high cv and carves smaller
    // early chunks.
    let mut leaked = PolicyKind::Taper.instantiate(200);
    for (i, &c) in a_costs.iter().enumerate() {
        leaked.observe(i, c);
    }
    let qb_leaked = ChunkQueue::new(leaked, 200, 4);
    let b_leaked = drain(&qb_leaked, &b_costs);
    assert_ne!(b_leaked, b_alone, "carried-over state had no effect; test is vacuous");
    // Sanity: A really was scheduled adaptively (multiple chunks).
    assert!(a_seq.len() > 1, "A drained in one chunk; skew never observed");
}

#[test]
fn barrier_mode_matches_too() {
    let kernel = SpinKernel::with_scale(2.0);
    let (g, opts) = pipeline_graph();
    let opts = ExecutorOptions { pipeline_overlap: false, ..opts };
    let seq = execute_sequential(&g, &opts, &kernel).unwrap();
    let run = execute_async(&g, &opts, &kernel).unwrap();
    assert_eq!(seq.outputs, run.outputs);
}

/// A wide fan-out (16 independent ops) over 2 drivers: the point of
/// the backend — many in-flight ops multiplexed over few threads —
/// must hold up (all complete exactly once, utilization is sane).
#[test]
fn many_inflight_ops_multiplex_over_two_drivers() {
    let g = shapes::fanout(16, 24, 0, 1.0, 0.5, false);
    let opts = ExecutorOptions { drivers: 2, ..ExecutorOptions::default() };
    let kernel = SpinKernel::with_scale(2.0);
    let run = execute_async(&g, &opts, &kernel).unwrap();
    assert_eq!(run.stats.total_tasks(), 1 + 16 * 24);
    for counts in &run.exec_counts {
        assert!(counts.iter().all(|&c| c == 1));
    }
    assert!(run.driver_utilization() <= 1.0 + 1e-9);
    assert!(run.measured_speedup() <= 2.0 + 1e-9);
    let seq = execute_sequential(&g, &opts, &kernel).unwrap();
    assert_eq!(seq.outputs, run.outputs);
}

#[test]
fn backend_dispatch_runs_async_from_execute_graph() {
    use orchestra_machine::MachineConfig;
    use orchestra_runtime::threaded::ExecutorBackend;
    let (g, opts) = dag_graph();
    let opts = ExecutorOptions { backend: ExecutorBackend::Async, ..opts };
    let report =
        orchestra_runtime::executor::execute_graph(&g, &MachineConfig::ncube2(64), &opts).unwrap();
    // Real run: processor count is the driver count, not the simulated
    // machine's 64.
    assert_eq!(report.processors, 2);
    assert_eq!(report.nodes.len(), 4);
    assert!(report.finish > 0.0);
    assert!(report.speedup() <= 2.0 + 1e-9);
}
