//! Golden tests pinning the paper's Figures 1–5 to the implementation.

use orchestra_descriptors::{descriptor_of_stmt, SymCtx};
use orchestra_lang::builder::{figure1_program, figure4_program};
use orchestra_lang::parse_program;
use orchestra_lang::pretty::stmt_to_string;
use orchestra_split::{
    categorize, pipeline_loop, primitives_of, split_computation, PieceClass, SplitOptions,
};

#[test]
fn figure1_descriptor_matches_paper_notation() {
    let prog = figure1_program(8);
    let ctx = SymCtx::from_program(&prog);
    let d_a = descriptor_of_stmt(&prog.body[0], &ctx);
    // A writes the masked columns of q: q[1..8, 1..8/(mask[*] <> 0)].
    let writes: Vec<String> = d_a.writes.iter().map(|t| t.to_string()).collect();
    assert!(
        writes.iter().any(|w| w == "q[1..8, 1..8/(mask[*] <> 0)]"),
        "missing masked write: {writes:?}"
    );
}

#[test]
fn figure2_split_shape() {
    let prog = figure1_program(8);
    let ctx = SymCtx::from_program(&prog);
    let d_a = descriptor_of_stmt(&prog.body[0], &ctx);
    let result = split_computation(&prog, &prog.body[1..], &d_a, &SplitOptions::default());

    let names: Vec<&str> = result.pieces.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, vec!["B_I", "B_D", "B_M"]);

    // B_I runs where the mask is zero, B_D where it is non-zero.
    let bi = stmt_to_string(&result.pieces[0].stmts[0]);
    assert!(bi.contains("where (mask[i] = 0)"), "{bi}");
    let bd = stmt_to_string(&result.pieces[1].stmts[0]);
    assert!(bd.contains("where (mask[i] <> 0)"), "{bd}");
    // The merge selects per-element by the same mask.
    let bm = stmt_to_string(&result.pieces[2].stmts[0]);
    assert!(bm.contains("if (mask[i] <> 0)"), "{bm}");
}

#[test]
fn figure3_pipeline_shape() {
    let prog = figure1_program(8);
    let r = pipeline_loop(&prog, &prog.body[0], 1, &SplitOptions::default()).expect("A pipelines");
    assert!(r.exposed_concurrency());
    let text = stmt_to_string(&r.transformed);
    // The paper's discontinuous range: do i = 1, col-2 and col, n.
    assert!(
        text.contains("do i = 1, col - 2 and col, n"),
        "independent piece must skip iteration col-1:\n{text}"
    );
}

#[test]
fn figure4_split_replicates_reduction() {
    let prog = figure4_program(8, 3);
    let ctx = SymCtx::from_program(&prog);
    let d_g = descriptor_of_stmt(&prog.body[0], &ctx);
    let result = split_computation(&prog, &prog.body[1..], &d_g, &SplitOptions::default());
    assert_eq!(result.loop_splits, vec!["H"]);
    // sum is replicated into per-piece accumulators, combined in H_M.
    assert!(result.new_decls.iter().any(|d| d.name == "sum__i"));
    assert!(result.new_decls.iter().any(|d| d.name == "sum__d"));
    let merge = result.pieces.iter().find(|p| p.class == PieceClass::Merge).expect("merge piece");
    let text: String = merge.stmts.iter().map(stmt_to_string).collect();
    assert!(text.contains("sum = sum + sum__i + sum__d"), "{text}");
}

#[test]
fn figure5_categories() {
    let src = r#"
program figure5
  integer n = 4
  float x[1..n], y[1..n], z[1..n], r[1..n], v[1..n], sum
  W: do i = 1, n { x[i] = 1.0 }
  A: do i = 1, n { y[i] = 2.0 }
  B: do i = 1, n { sum = sum + x[i] * y[i] }
  C: do i = 1, n { z[i] = y[i] }
  D: do i = 1, n { r[i] = sum }
  E: do i = 1, n { v[i] = 3.0 }
end
"#;
    let prog = parse_program(src).unwrap();
    let ctx = SymCtx::from_program(&prog);
    let d_w = descriptor_of_stmt(&prog.body[0], &ctx);
    let prims = primitives_of(&prog.body[1..], &ctx);
    let cats = categorize(&prims, &d_w);
    let by_name: std::collections::BTreeMap<&str, &str> =
        prims.iter().map(|p| (p.name.as_str(), cats.category_of(p.id))).collect();
    assert_eq!(by_name["A"], "GenerateLinked");
    assert_eq!(by_name["B"], "Bound");
    assert_eq!(by_name["C"], "ReadLinked");
    assert_eq!(by_name["D"], "NeedsBound");
    assert_eq!(by_name["E"], "Free");
}

#[test]
fn paper_section32_example_descriptor() {
    // §3.2's running example with the miss[] guard.
    let src = r#"
program ex
  integer miss[1..10]
  float q[1..10, 1..10], x[1..10]
  L: do i = 1, 10 {
    if (miss[i] <> 1) {
      do j = 1, 10 {
        q[i, j] = q[i, j] + x[j]
      }
    }
  }
end
"#;
    let prog = parse_program(src).unwrap();
    let ctx = SymCtx::from_program(&prog);
    let d = descriptor_of_stmt(&prog.body[0], &ctx);
    let writes: Vec<String> = d.writes.iter().map(|t| t.to_string()).collect();
    assert_eq!(writes, vec!["q[1..10/(miss[*] <> 1), 1..10]"]);
}
