//! Cooperative cancellation: an aborted graph returns a clean
//! [`RunError::Cancelled`] / [`RunError::DeadlineExceeded`] on every
//! backend, frees its workers promptly, and leaves the process
//! perfectly reusable — the next run on the same thread pool size
//! must still be bitwise-identical to the sequential reference.

mod common;

use common::shapes;
use orchestra_delirium::DelirGraph;
use orchestra_runtime::asynch::execute_async;
use orchestra_runtime::cancel::{CancelToken, RunError};
use orchestra_runtime::executor::ExecutorOptions;
use orchestra_runtime::threaded::{
    execute_sequential, execute_threaded, ExecutorBackend, SpinKernel,
};
use std::time::Duration;

fn kernel() -> SpinKernel {
    SpinKernel::with_scale(8.0)
}

/// A graph long enough that a mid-run cancel lands while work remains.
fn long_graph() -> DelirGraph {
    shapes::chain(6, 256, 30.0, 0.3)
}

fn opts(backend: ExecutorBackend) -> ExecutorOptions {
    ExecutorOptions { threads: 2, drivers: 2, backend, ..ExecutorOptions::default() }
}

/// A token cancelled before submission aborts the run on its first
/// claim without executing to completion.
#[test]
fn pre_cancelled_token_aborts_threaded_run() {
    let token = CancelToken::new();
    token.cancel();
    let o = ExecutorOptions { cancel: Some(token), ..opts(ExecutorBackend::Threaded) };
    let err = execute_threaded(&long_graph(), &o, &kernel()).unwrap_err();
    assert_eq!(err, RunError::Cancelled);
}

#[test]
fn pre_cancelled_token_aborts_dist_run() {
    let token = CancelToken::new();
    token.cancel();
    let o = ExecutorOptions { cancel: Some(token), ..opts(ExecutorBackend::ThreadedDist) };
    let err = execute_threaded(&long_graph(), &o, &kernel()).unwrap_err();
    assert_eq!(err, RunError::Cancelled);
}

#[test]
fn pre_cancelled_token_aborts_async_run() {
    let token = CancelToken::new();
    token.cancel();
    let o = ExecutorOptions { cancel: Some(token), ..opts(ExecutorBackend::Async) };
    let err = execute_async(&long_graph(), &o, &kernel()).unwrap_err();
    assert_eq!(err, RunError::Cancelled);
}

#[test]
fn pre_cancelled_token_aborts_sequential_run() {
    let token = CancelToken::new();
    token.cancel();
    let o = ExecutorOptions { cancel: Some(token), ..opts(ExecutorBackend::Threaded) };
    let err = execute_sequential(&long_graph(), &o, &kernel()).unwrap_err();
    assert_eq!(err, RunError::Cancelled);
}

/// Cancelling from another thread mid-run aborts promptly (bounded by
/// the test's own generous timeout rather than the graph's runtime)
/// and the pool is immediately reusable for a bitwise-correct run.
#[test]
fn mid_run_cancel_frees_the_pool_for_a_clean_rerun() {
    for backend in [ExecutorBackend::Threaded, ExecutorBackend::ThreadedDist] {
        let token = CancelToken::new();
        let o = ExecutorOptions { cancel: Some(token.clone()), ..opts(backend) };
        // Sized to run for tens of milliseconds at the default kernel
        // scale, so a 5 ms cancel always lands mid-run.
        let g = shapes::chain(8, 512, 300.0, 0.2);
        let k = SpinKernel::default();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                token.cancel();
            })
        };
        let t0 = std::time::Instant::now();
        let res = execute_threaded(&g, &o, &k);
        let aborted_after = t0.elapsed();
        canceller.join().unwrap();
        assert_eq!(res.unwrap_err(), RunError::Cancelled, "backend {backend:?}");
        // Promptness: the abort must not take anywhere near the
        // graph's full runtime. Generous bound for loaded CI hosts.
        assert!(
            aborted_after < Duration::from_secs(10),
            "cancel took {aborted_after:?} on {backend:?}"
        );
        // Rerun with no token on a smaller shape: must be bitwise the
        // sequential result, every task exactly once.
        let g2 = long_graph();
        let k2 = kernel();
        let o2 = opts(backend);
        let run = execute_threaded(&g2, &o2, &k2).expect("pool reusable after cancel");
        let seq = execute_sequential(&g2, &o2, &k2).unwrap();
        assert_eq!(run.outputs, seq.outputs, "backend {backend:?}");
        for counts in &run.exec_counts {
            assert!(counts.iter().all(|&c| c == 1), "exactly-once after cancel");
        }
    }
}

/// Mid-run cancel on the async backend: the scheduler aborts, the
/// error is clean, and a follow-up run succeeds bitwise.
#[test]
fn mid_run_cancel_async_then_clean_rerun() {
    let token = CancelToken::new();
    let o = ExecutorOptions { cancel: Some(token.clone()), ..opts(ExecutorBackend::Async) };
    let g = shapes::chain(8, 512, 300.0, 0.2);
    let k = SpinKernel::default();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            token.cancel();
        })
    };
    let res = execute_async(&g, &o, &k);
    canceller.join().unwrap();
    assert_eq!(res.unwrap_err(), RunError::Cancelled);
    let g2 = long_graph();
    let k2 = kernel();
    let o2 = opts(ExecutorBackend::Async);
    let run = execute_async(&g2, &o2, &k2).expect("drivers reusable after cancel");
    let seq = execute_sequential(&g2, &o2, &k2).unwrap();
    assert_eq!(run.outputs, seq.outputs);
}

/// An already-expired deadline aborts with `DeadlineExceeded`, and the
/// two abort reasons are distinguishable.
#[test]
fn expired_deadline_aborts_with_its_own_error() {
    let o = ExecutorOptions { deadline: Some(Duration::ZERO), ..opts(ExecutorBackend::Threaded) };
    let err = execute_threaded(&long_graph(), &o, &kernel()).unwrap_err();
    assert_eq!(err, RunError::DeadlineExceeded);

    let o = ExecutorOptions { deadline: Some(Duration::ZERO), ..opts(ExecutorBackend::Async) };
    let err = execute_async(&long_graph(), &o, &kernel()).unwrap_err();
    assert_eq!(err, RunError::DeadlineExceeded);
}

/// A deadline far in the future never fires: the run completes and
/// stays bitwise-identical to the sequential reference (the cancel
/// hook must not perturb scheduling results).
#[test]
fn generous_deadline_never_perturbs_results() {
    for backend in [ExecutorBackend::Threaded, ExecutorBackend::ThreadedDist] {
        let g = shapes::diamond(4.0, (96, 2.0, 0.6), (64, 1.5, 0.3), 2.0);
        let k = kernel();
        let o = ExecutorOptions {
            cancel: Some(CancelToken::new()),
            deadline: Some(Duration::from_secs(3600)),
            ..opts(backend)
        };
        let run = execute_threaded(&g, &o, &k).expect("deadline must not fire");
        let seq = execute_sequential(&g, &opts(backend), &k).unwrap();
        assert_eq!(run.outputs, seq.outputs, "backend {backend:?}");
    }
}
