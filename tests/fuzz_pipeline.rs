//! Whole-pipeline fuzzing: randomly generated (but well-formed by
//! construction) MF programs are pushed through every stage —
//! pretty-print round-trip, analysis (with SSA verification), dead code
//! elimination, descriptors, and the full split/pipeline compilation —
//! asserting the invariants each stage promises.

use orchestra_analysis::{analyze_program, collect_scalars, dce::eliminate_dead_code};
use orchestra_core::compile;
use orchestra_descriptors::{descriptor_of_stmts, SymCtx};
use orchestra_lang::ast::{BinOp, Decl, Expr, LValue, Program, Range, Stmt, Type};
use orchestra_lang::interp::{Env, Interp, Value};
use orchestra_lang::{parse_program, pretty::pretty_print};
use orchestra_split::SplitOptions;
use proptest::prelude::*;

const N: i64 = 6; // every array is [1..N]; indices stay in range by construction

/// Expressions that always evaluate safely (no division, indices by the
/// loop variable only).
fn gen_value_expr(arrays: Vec<String>, ivar: String) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-4i64..5).prop_map(Expr::IntLit),
        (-40i64..41).prop_map(|v| Expr::FloatLit(v as f64 * 0.25)),
        Just(Expr::var(ivar.clone())),
        proptest::sample::select(arrays.clone())
            .prop_map(move |a| Expr::index(a, vec![Expr::var(ivar.clone())])),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)]
            )
                .prop_map(|(l, r, op)| Expr::bin(op, l, r)),
            inner.prop_map(|e| Expr::Call("f".into(), vec![e])),
        ]
    })
    .boxed()
}

/// One random loop writing a designated output array.
fn gen_loop(arrays: Vec<String>, out: String, label: String, masked: bool) -> BoxedStrategy<Stmt> {
    let iv = format!("i_{label}");
    gen_value_expr(arrays, iv.clone())
        .prop_map(move |value| {
            let body = vec![Stmt::Assign {
                target: LValue::Index(out.clone(), vec![Expr::var(iv.clone())]),
                value,
            }];
            let mask = masked.then(|| {
                Expr::bin(
                    BinOp::Ne,
                    Expr::index("mask", vec![Expr::var(iv.clone())]),
                    Expr::IntLit(0),
                )
            });
            Stmt::Do {
                label: Some(label.clone()),
                var: iv.clone(),
                ranges: vec![Range::new(Expr::IntLit(1), Expr::var("n"))],
                mask,
                body,
            }
        })
        .boxed()
}

/// A random well-formed program: declarations, then 2–4 loops chained
/// through arrays (loop k may read arrays written by earlier loops).
fn gen_program() -> impl Strategy<Value = Program> {
    (2usize..5, any::<bool>(), any::<bool>()).prop_flat_map(|(nloops, mask_first, _)| {
        let mut loops: Vec<BoxedStrategy<Stmt>> = Vec::new();
        for k in 0..nloops {
            let readable: Vec<String> = (0..=k).map(|j| format!("a{j}")).collect(); // may read own output (reduction-ish is fine elementwise)
            let out = format!("a{}", k + 1);
            let label = format!("L{k}");
            loops.push(gen_loop(readable, out, label, k == 0 && mask_first));
        }
        loops.prop_map(move |body| {
            let mut p = Program::new("fuzz");
            p.decls.push(Decl::scalar_init("n", Type::Int, Expr::IntLit(N)));
            p.decls.push(Decl::array(
                "mask",
                Type::Int,
                vec![Range::new(Expr::IntLit(1), Expr::var("n"))],
            ));
            for j in 0..=nloops {
                p.decls.push(Decl::array(
                    format!("a{j}"),
                    Type::Float,
                    vec![Range::new(Expr::IntLit(1), Expr::var("n"))],
                ));
            }
            p.body = body;
            p
        })
    })
}

fn random_inputs(seed: u64) -> Env {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut env = Env::new();
    env.insert(
        "mask".into(),
        Value::IntArray { dims: vec![(1, N)], data: (0..N).map(|_| rng.gen_range(0..2)).collect() },
    );
    env.insert(
        "a0".into(),
        Value::FloatArray {
            dims: vec![(1, N)],
            data: (0..N).map(|_| rng.gen_range(-4.0..4.0)).collect(),
        },
    );
    env
}

fn stores_match(e1: &Env, e2: &Env, skip: &std::collections::BTreeSet<String>) {
    for (name, v) in e1 {
        if skip.contains(name) {
            continue;
        }
        let got = e2.get(name).unwrap_or_else(|| panic!("missing {name}"));
        match (v, got) {
            (Value::FloatArray { data: a, .. }, Value::FloatArray { data: b, .. }) => {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() <= 1e-6 * (1.0 + x.abs()), "{name}: {x} vs {y}");
                }
            }
            _ => assert_eq!(v, got, "{name}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn printer_round_trips(p in gen_program()) {
        let printed = pretty_print(&p);
        let reparsed = parse_program(&printed).expect("printed source parses");
        prop_assert_eq!(p, reparsed);
    }

    #[test]
    fn analysis_produces_valid_ssa(p in gen_program()) {
        let a = analyze_program(&p);
        let violations = orchestra_analysis::verify::verify_ssa(&a.ssa);
        prop_assert!(violations.is_empty(), "{violations:?}");
        // Every block got an assertion slot and values don't panic.
        prop_assert_eq!(a.prop.assertions.len(), a.ssa.cfg.len());
    }

    #[test]
    fn descriptors_do_not_panic_and_self_interfere_consistently(p in gen_program()) {
        let ctx = SymCtx::from_program(&p);
        let d = descriptor_of_stmts(&p.body, &ctx);
        // Writing anything ⇒ self-interference (output dependence).
        if !d.writes.is_empty() {
            prop_assert!(d.interferes(&d));
        }
    }

    #[test]
    fn dce_preserves_semantics(p in gen_program(), seed in 0u64..100) {
        let (cleaned, _) = eliminate_dead_code(&p);
        let inputs = random_inputs(seed);
        let e1 = Interp::new().run(&p, &inputs).expect("original runs");
        let e2 = Interp::new().run(&cleaned, &inputs).expect("cleaned runs");
        let skip: std::collections::BTreeSet<String> =
            collect_scalars(&p).into_iter().collect();
        stores_match(&e1, &e2, &skip);
    }

    #[test]
    fn transformed_programs_pass_semantic_checking(p in gen_program()) {
        let compiled = compile(p, &SplitOptions::default());
        let errs = orchestra_lang::check_program(&compiled.transformed);
        prop_assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn compile_preserves_semantics(p in gen_program(), seed in 0u64..100) {
        let compiled = compile(p.clone(), &SplitOptions::default());
        let inputs = random_inputs(seed);
        let e1 = Interp::new().run(&p, &inputs).expect("original runs");
        let e2 = Interp::new()
            .run(&compiled.transformed, &inputs)
            .expect("transformed runs");
        let mut skip: std::collections::BTreeSet<String> =
            collect_scalars(&p).into_iter().collect();
        skip.extend(collect_scalars(&compiled.transformed));
        stores_match(&e1, &e2, &skip);
    }
}
