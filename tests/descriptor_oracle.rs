//! Property test: descriptor interference is *conservative* with
//! respect to a brute-force concrete-access oracle.
//!
//! For randomly generated pairs of single-loop computations with affine
//! index expressions, we enumerate the concrete cells each loop reads
//! and writes, decide dependence exactly, and require that whenever the
//! concrete sets conflict, the symbolic descriptors report interference.
//! (The converse may fail — descriptors are allowed to over-approximate
//! — so only the soundness direction is asserted.)

use orchestra_descriptors::{descriptor_of_stmt, SymCtx};
use orchestra_lang::ast::Program;
use orchestra_lang::builder as b;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One generated loop: `do i = lo, hi { arr[c*i + d] = src[i] }` or a
/// read-only variant.
#[derive(Debug, Clone)]
struct GenLoop {
    lo: i64,
    hi: i64,
    coeff: i64,
    offset: i64,
    writes: bool,
}

impl GenLoop {
    /// The concrete cells of the shared array this loop touches.
    fn cells(&self) -> BTreeSet<i64> {
        (self.lo..=self.hi).map(|i| self.coeff * i + self.offset).collect()
    }

    fn to_stmt(&self, target: &str, other: &str) -> orchestra_lang::ast::Stmt {
        // index expression c*i + d
        let idx = b::add(b::mul(b::int(self.coeff), b::v("i")), b::int(self.offset));
        let body = if self.writes {
            b::set_elem(target, vec![idx], b::elem(other, vec![b::v("i")]))
        } else {
            b::set_elem(other, vec![b::v("i")], b::elem(target, vec![idx]))
        };
        orchestra_lang::ast::Stmt::Do {
            label: Some("L".into()),
            var: "i".into(),
            ranges: vec![orchestra_lang::ast::Range::new(b::int(self.lo), b::int(self.hi))],
            mask: None,
            body: vec![body],
        }
    }
}

fn gen_loop() -> impl Strategy<Value = GenLoop> {
    (1i64..6, 0i64..6, 1i64..3, -4i64..8, any::<bool>()).prop_map(
        |(lo, len, coeff, offset, writes)| GenLoop { lo, hi: lo + len, coeff, offset, writes },
    )
}

/// Builds a program declaring a shared array big enough for all cells,
/// plus disjoint scratch arrays for each loop.
fn program_for(l1: &GenLoop, l2: &GenLoop) -> Program {
    let max_cell =
        l1.cells().into_iter().chain(l2.cells()).max().unwrap_or(1).max(l1.hi.max(l2.hi));
    let mut pb = b::ProgramBuilder::new("oracle");
    pb.int_scalar("n", max_cell.max(1) + 8);
    pb.array("shared", orchestra_lang::ast::Type::Float, vec![b::v("n")]);
    pb.array("s1", orchestra_lang::ast::Type::Float, vec![b::v("n")]);
    pb.array("s2", orchestra_lang::ast::Type::Float, vec![b::v("n")]);
    pb.stmt(l1.to_stmt("shared", "s1"));
    pb.stmt(l2.to_stmt("shared", "s2"));
    pb.build()
}

/// Exact dependence: some shared cell is written by one loop and
/// touched by the other (flow/anti/output).
fn concrete_conflict(l1: &GenLoop, l2: &GenLoop) -> bool {
    let (c1, c2) = (l1.cells(), l2.cells());
    let overlap = c1.intersection(&c2).next().is_some();
    overlap && (l1.writes || l2.writes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interference_is_conservative(l1 in gen_loop(), l2 in gen_loop()) {
        // Negative-index programs are rejected by the interpreter but
        // fine for the descriptor layer; restrict to valid cells so the
        // program is also executable in principle.
        prop_assume!(l1.cells().iter().all(|&c| c >= 1));
        prop_assume!(l2.cells().iter().all(|&c| c >= 1));

        let prog = program_for(&l1, &l2);
        let ctx = SymCtx::from_program(&prog);
        let d1 = descriptor_of_stmt(&prog.body[0], &ctx);
        let d2 = descriptor_of_stmt(&prog.body[1], &ctx);

        if concrete_conflict(&l1, &l2) {
            prop_assert!(
                d1.interferes(&d2),
                "concrete conflict missed:\n{l1:?}\n{l2:?}\nd1: {d1}\nd2: {d2}"
            );
        }
        // Symmetry of the interference relation.
        prop_assert_eq!(d1.interferes(&d2), d2.interferes(&d1));
    }

    /// Flow interference soundness: when loop 1 writes cells loop 2
    /// reads, `flow_interferes_from` must see it.
    #[test]
    fn flow_interference_is_conservative(mut l1 in gen_loop(), mut l2 in gen_loop()) {
        l1.writes = true;
        l2.writes = false;
        prop_assume!(l1.cells().iter().all(|&c| c >= 1));
        prop_assume!(l2.cells().iter().all(|&c| c >= 1));

        let prog = program_for(&l1, &l2);
        let ctx = SymCtx::from_program(&prog);
        let d1 = descriptor_of_stmt(&prog.body[0], &ctx);
        let d2 = descriptor_of_stmt(&prog.body[1], &ctx);

        let concrete_flow =
            l1.cells().intersection(&l2.cells()).next().is_some();
        if concrete_flow {
            prop_assert!(d2.flow_interferes_from(&d1));
        }
    }

    /// Precision spot-check: loops over provably disjoint constant
    /// ranges of the same array must NOT interfere.
    #[test]
    fn disjoint_constant_ranges_do_not_interfere(
        lo1 in 1i64..5, len1 in 0i64..4, gap in 1i64..4, len2 in 0i64..4
    ) {
        let l1 = GenLoop { lo: lo1, hi: lo1 + len1, coeff: 1, offset: 0, writes: true };
        let lo2 = l1.hi + gap;
        let l2 = GenLoop { lo: lo2, hi: lo2 + len2, coeff: 1, offset: 0, writes: true };
        let prog = program_for(&l1, &l2);
        let ctx = SymCtx::from_program(&prog);
        let d1 = descriptor_of_stmt(&prog.body[0], &ctx);
        let d2 = descriptor_of_stmt(&prog.body[1], &ctx);
        prop_assert!(!d1.interferes(&d2), "d1: {d1}\nd2: {d2}");
    }
}
