//! Contention stress tests for the threaded backend's scheduling hot
//! path.
//!
//! Many workers × tiny tasks is the adversarial regime for the claim
//! queue and the ready deques: scheduling events outnumber useful
//! work, so any lost wakeup, duplicated chunk, or dropped token shows
//! up as a hang, a wrong execution count, or a diverging buffer.
//! Unlike the differential suite (capped at 2 workers), these tests
//! deliberately oversubscribe the machine with 8 workers.
//!
//! The task-cost RNG seed comes from `ORCHESTRA_TEST_SEED` (decimal or
//! `0x` hex; default fixed) and is printed in every failure message,
//! so a seed that exposes an interleaving bug can be replayed with
//! `ORCHESTRA_TEST_SEED=<seed> cargo test --test sched_stress`.

mod common;

use common::shapes;
use orchestra_delirium::DelirGraph;
use orchestra_runtime::chunking::PolicyKind;
use orchestra_runtime::executor::ExecutorOptions;
use orchestra_runtime::threaded::{execute_sequential, execute_threaded, SpinKernel, ThreadedRun};
use orchestra_runtime::{StealOrder, TopologyMode};

const POLICIES: [PolicyKind; 6] = [
    PolicyKind::Static,
    PolicyKind::SelfSched,
    PolicyKind::Gss,
    PolicyKind::Factoring,
    PolicyKind::Taper,
    PolicyKind::TaperCostFn,
];

const WORKERS: usize = 8;

/// Stress options: `WORKERS` threads and the suite's replayable seed.
fn stress_opts(policy: PolicyKind) -> ExecutorOptions {
    ExecutorOptions {
        policy,
        threads: WORKERS,
        seed: common::test_seed(),
        ..ExecutorOptions::default()
    }
}

/// One wide op of tiny tasks: every worker hammers one chunk queue.
fn flat_tiny_graph() -> DelirGraph {
    shapes::flat(12_000, 1.0, 1.2)
}

/// A task fanning out into many small independent ops: every worker
/// hammers the ready deques and the park/wake path instead.
fn wide_dag_graph() -> DelirGraph {
    shapes::fanout(12, 160, 16, 1.0, 0.8, true)
}

fn assert_exactly_once_and_bitwise(
    g: &DelirGraph,
    opts: &ExecutorOptions,
    label: &str,
) -> ThreadedRun {
    let label = format!("{label}/seed={:#x}", opts.seed);
    let kernel = SpinKernel::with_scale(1.0);
    let seq = execute_sequential(g, opts, &kernel).expect("sequential reference");
    let thr = execute_threaded(g, opts, &kernel).expect("threaded run");
    for (op, counts) in thr.ops.iter().zip(&thr.exec_counts) {
        assert!(
            counts.iter().all(|&c| c == 1),
            "{label}: op {} has a task executed != once",
            op.name
        );
    }
    assert_eq!(seq.outputs.len(), thr.outputs.len(), "{label}: op count");
    for (i, (a, b)) in seq.outputs.iter().zip(&thr.outputs).enumerate() {
        assert_eq!(a, b, "{label}: op {} buffers diverge", seq.op_names[i]);
    }
    thr
}

#[test]
fn contended_flat_op_every_policy() {
    let g = flat_tiny_graph();
    for policy in POLICIES {
        let opts = stress_opts(policy);
        assert_exactly_once_and_bitwise(&g, &opts, policy.name());
    }
}

#[test]
fn contended_wide_dag_every_policy() {
    let g = wide_dag_graph();
    for policy in POLICIES {
        let opts = stress_opts(policy);
        assert_exactly_once_and_bitwise(&g, &opts, policy.name());
    }
}

/// A claim storm against an already-exhausted queue: stale tokens keep
/// circulating after an op drains, so `claim()` on an empty queue is a
/// real hot path, not an error path. N thief threads spin `claim()`
/// thousands of times on a drained queue in both modes — every call
/// must return `None`, `has_more()` must never flip back to `true`,
/// the fixed-mode cursor must not creep past the chunk count, and the
/// chunk counter must not grow.
#[test]
fn post_exhaustion_claim_storm() {
    use orchestra_runtime::threaded::queue::ChunkQueue;
    use std::sync::Arc;
    const TASKS: usize = 512;
    const SPINS: usize = 5_000;
    // Gss takes the lock-free fixed path, Taper the mutex'd adaptive
    // path; the exhaustion boundary is different code in each.
    for policy in [PolicyKind::Gss, PolicyKind::Taper] {
        let q = Arc::new(ChunkQueue::new(policy.instantiate(TASKS), TASKS, WORKERS));
        let mut drained = 0usize;
        while let Some(c) = q.claim() {
            drained += c.len;
        }
        assert_eq!(drained, TASKS, "{}: queue drained exactly once", policy.name());
        assert!(!q.has_more(), "{}: exhausted queue advertises work", policy.name());
        let cursor0 = q.fixed_cursor();
        let chunks0 = q.chunks_claimed();
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for _ in 0..SPINS {
                        assert!(q.claim().is_none(), "claim on an exhausted queue");
                        assert!(!q.has_more(), "has_more true after the final chunk");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thief thread panicked");
        }
        assert_eq!(q.fixed_cursor(), cursor0, "{}: cursor grew on stale claims", policy.name());
        assert_eq!(q.chunks_claimed(), chunks0, "{}: chunk counter grew", policy.name());
        assert!(!q.has_more());
    }
}

/// A live claim storm against the lock-free adaptive path: 8 threads
/// hammer one adaptive queue over a tiny-task space, feeding Welford
/// stats back after every chunk so the winner keeps republishing new
/// epoch descriptors under fire. The decreasing chunk series (and the
/// half-remaining epoch cap) forces many epoch rollovers — the only
/// place the adaptive claim path takes its short critical section —
/// while the `fetch_add` fast path races it from every other thread.
/// Every task index must be handed out exactly once across all
/// threads, whatever the interleaving.
#[test]
fn adaptive_live_claim_storm_exactly_once() {
    use orchestra_runtime::stats::OnlineStats;
    use orchestra_runtime::threaded::queue::ChunkQueue;
    use std::sync::Arc;
    const TASKS: usize = 12_000;
    for policy in [PolicyKind::Taper, PolicyKind::TaperCostFn] {
        let q = Arc::new(ChunkQueue::new(policy.instantiate(TASKS), TASKS, WORKERS));
        assert!(q.is_adaptive(), "{}: expected the adaptive path", policy.name());
        let handles: Vec<_> = (0..WORKERS)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut claimed: Vec<(usize, usize)> = Vec::new();
                    while let Some(c) = q.claim() {
                        // Tiny synthetic task costs, varied per thread
                        // so concurrent feedback pushes the policy
                        // state around while descriptors republish.
                        let mut stats = OnlineStats::new();
                        for i in c.start..c.start + c.len {
                            stats.observe(1.0 + ((i + t) % 5) as f64);
                        }
                        q.observe_chunk(c.start, c.len, &stats);
                        claimed.push((c.start, c.len));
                    }
                    claimed
                })
            })
            .collect();
        let mut seen = vec![0u32; TASKS];
        let mut chunks = 0u64;
        for h in handles {
            for (start, len) in h.join().expect("claimer thread panicked") {
                chunks += 1;
                for slot in &mut seen[start..start + len] {
                    *slot += 1;
                }
            }
        }
        let dupes = seen.iter().filter(|&&c| c > 1).count();
        let missed = seen.iter().filter(|&&c| c == 0).count();
        assert_eq!(
            (dupes, missed),
            (0, 0),
            "{}: {dupes} duplicated / {missed} missed tasks under the claim storm",
            policy.name()
        );
        assert_eq!(q.chunks_claimed(), chunks, "{}: chunk counter drifted", policy.name());
        assert!(!q.has_more(), "{}: drained queue advertises work", policy.name());
        assert!(q.claim().is_none(), "{}: claim after drain", policy.name());
        // Tiny tasks over 8 workers must have crossed many epoch
        // boundaries — the republish path, not just the fast path.
        assert!(chunks > WORKERS as u64 * 4, "{}: only {chunks} chunks claimed", policy.name());
    }
}

/// A steal storm against one loaded victim: completing `src` enables
/// all 12 fan-out ops at once, and the completer pushes every token
/// onto its OWN deque — so seven empty thieves hammer a single
/// worker's deque back through their steal schedules. Runs under both
/// steal orders and under a synthetic 2-node × 2-core × SMT-2 topology
/// (which gives the hierarchical schedules real sibling/node/remote
/// classes even on a 1-CPU host). Steal *counts* depend on host timing
/// — on one core the victim often drains its deque before a thief gets
/// a window — so the metric assertions are internal consistency only,
/// never `steals > 0`.
#[test]
fn steal_storm_single_loaded_victim() {
    let g = wide_dag_graph();
    for order in [StealOrder::Hierarchical, StealOrder::Ring] {
        for (tname, topology) in [
            ("auto", TopologyMode::Auto),
            ("synthetic", TopologyMode::Synthetic { nodes: 2, cores_per_node: 2, smt: 2 }),
        ] {
            for round in 0..3 {
                let opts = ExecutorOptions {
                    steal_order: order,
                    topology,
                    ..stress_opts(PolicyKind::Taper)
                };
                let label = format!("storm/{order:?}/{tname}/round{round}");
                let thr = assert_exactly_once_and_bitwise(&g, &opts, &label);
                let s = &thr.steal;
                assert_eq!(
                    s.sibling_steals + s.node_steals + s.remote_steals,
                    s.steals,
                    "{label}: distance buckets don't sum to the steal total"
                );
                assert!(
                    s.distance_sum == s.node_steals + 2 * s.remote_steals,
                    "{label}: distance sum inconsistent with buckets"
                );
                if s.remote_steals == 0 {
                    assert_eq!(
                        s.batched_tokens, 0,
                        "{label}: batched tokens without a remote steal"
                    );
                }
                if s.steals > 0 {
                    let d = s.mean_distance();
                    assert!((0.0..=2.0).contains(&d), "{label}: mean distance {d} out of range");
                }
                if tname == "synthetic" {
                    let fp = thr.topology;
                    assert_eq!(fp.source, "synthetic", "{label}: fingerprint source");
                    assert_eq!(fp.nodes, 2, "{label}: fingerprint nodes");
                    assert_eq!(fp.cpus, 8, "{label}: fingerprint cpus");
                }
                assert!(
                    thr.pinned_workers <= WORKERS,
                    "{label}: pinned {} of {WORKERS} workers",
                    thr.pinned_workers
                );
            }
        }
    }
}

/// Repeated runs of the highest-churn configuration: self-scheduling
/// hands out 12k size-1 chunks to 8 workers, so any rare interleaving
/// bug (lost wakeup, double claim at the exhaustion boundary) gets
/// many chances to fire.
#[test]
fn repeated_self_sched_churn() {
    let g = flat_tiny_graph();
    let opts = stress_opts(PolicyKind::SelfSched);
    let kernel = SpinKernel::with_scale(1.0);
    for round in 0..5 {
        let thr = execute_threaded(&g, &opts, &kernel).expect("threaded run");
        let counts = &thr.exec_counts[0];
        assert!(
            counts.iter().all(|&c| c == 1),
            "round {round}/seed={:#x}: lost or duplicated task",
            opts.seed
        );
        assert_eq!(thr.ops[0].chunks, 12_000, "round {round}: self-scheduling chunk count");
    }
}
