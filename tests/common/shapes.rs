//! Parameterized graph-shape builders shared by the differential,
//! stress, and chaos suites.
//!
//! Every suite exercises the same four structural families — a flat
//! wide op, a diamond DAG, a pipeline group with a carried edge, and a
//! skewed cost mixture — but each backend wants different sizes and
//! cost shapes (the dist suite needs uniform costs to pin the cv gate
//! shut, the stress suite needs 12k tiny tasks, the chaos suite needs
//! graphs small enough to replay hundreds of times in debug mode).
//! These builders take the shape parameters and leave the invariants
//! to the callers.

use orchestra_delirium::{DataAnno, DelirGraph, NodeKind, Population};
use std::collections::HashMap;

/// A `(tasks, mean_cost, cv)` triple describing one data-parallel op
/// or one mixture population.
pub type ParShape = (usize, f64, f64);

/// One wide data-parallel op `F`, nothing else.
pub fn flat(tasks: usize, mean_cost: f64, cv: f64) -> DelirGraph {
    let mut g = DelirGraph::new();
    g.add_node("F", NodeKind::DataParallel { tasks, mean_cost, cv }, None);
    g
}

/// A diamond DAG: task `A` → data-parallel `B` and `C` → merge `D`.
pub fn diamond(src_cost: f64, left: ParShape, right: ParShape, sink_cost: f64) -> DelirGraph {
    let mut g = DelirGraph::new();
    let a = g.add_node("A", NodeKind::Task { cost: src_cost }, None);
    let b = g.add_node(
        "B",
        NodeKind::DataParallel { tasks: left.0, mean_cost: left.1, cv: left.2 },
        None,
    );
    let c = g.add_node(
        "C",
        NodeKind::DataParallel { tasks: right.0, mean_cost: right.1, cv: right.2 },
        None,
    );
    let d = g.add_node("D", NodeKind::Merge { cost: sink_cost }, None);
    g.add_edge(a, b, DataAnno::array("x", left.0 as u64));
    g.add_edge(a, c, DataAnno::array("y", right.0 as u64));
    g.add_edge(b, d, DataAnno::array("r1", left.0 as u64));
    g.add_edge(c, d, DataAnno::array("r2", right.0 as u64));
    g
}

/// A pipeline group `A` with a carried edge: independent piece `A_I`,
/// dependent piece `A_D`, merge `A_M`, unrolled over `iters`
/// iterations; `downstream` optionally adds a consumer op `B` with
/// that many near-uniform tasks after the group. Returns the graph and
/// the `pipeline_iters` map to splice into `ExecutorOptions`.
pub fn pipeline(
    indep: ParShape,
    dep: ParShape,
    iters: usize,
    downstream: Option<usize>,
) -> (DelirGraph, HashMap<String, usize>) {
    let mut g = DelirGraph::new();
    let ai = g.add_node(
        "A_I",
        NodeKind::DataParallel { tasks: indep.0, mean_cost: indep.1, cv: indep.2 },
        Some("A".into()),
    );
    let ad = g.add_node(
        "A_D",
        NodeKind::DataParallel { tasks: dep.0, mean_cost: dep.1, cv: dep.2 },
        Some("A".into()),
    );
    let am = g.add_node("A_M", NodeKind::Merge { cost: 1.0 }, Some("A".into()));
    g.add_edge(ai, am, DataAnno::array("r1", indep.0 as u64));
    g.add_edge(ad, am, DataAnno::array("r2", dep.0 as u64));
    g.add_carried_edge(am, ad, DataAnno::array("carried", dep.0 as u64));
    if let Some(tasks) = downstream {
        let b = g.add_node("B", NodeKind::DataParallel { tasks, mean_cost: 1.0, cv: 0.1 }, None);
        g.add_edge(am, b, DataAnno::array("out", tasks as u64));
    }
    let mut pipeline_iters = HashMap::new();
    pipeline_iters.insert("A".to_string(), iters);
    (g, pipeline_iters)
}

/// A cost-mixture op `M` over the given populations (the skewed
/// shape), optionally feeding a merge sink `S`.
pub fn mixture(populations: &[ParShape], sink: bool) -> DelirGraph {
    let mut g = DelirGraph::new();
    let total: usize = populations.iter().map(|p| p.0).sum();
    let m = g.add_node(
        "M",
        NodeKind::Mixture {
            populations: populations
                .iter()
                .map(|&(tasks, mean_cost, cv)| Population { tasks, mean_cost, cv })
                .collect(),
        },
        None,
    );
    if sink {
        let s = g.add_node("S", NodeKind::Merge { cost: 1.0 }, None);
        g.add_edge(m, s, DataAnno::array("z", total as u64));
    }
    g
}

/// A deep linear chain `c0 → c1 → … → c{depth-1}` of equal-width
/// data-parallel ops — the streamed data plane's stress shape: every
/// edge joins two element-wise ops of the same cardinality, so
/// chunk-granularity pipelining (per-edge progress watermarks) engages
/// on all `depth - 1` edges at once and consumer chunks start while
/// their producers are still running.
pub fn chain(depth: usize, tasks: usize, mean_cost: f64, cv: f64) -> DelirGraph {
    let mut g = DelirGraph::new();
    let mut prev = None;
    for i in 0..depth {
        let n = g.add_node(format!("c{i}"), NodeKind::DataParallel { tasks, mean_cost, cv }, None);
        if let Some(p) = prev {
            g.add_edge(p, n, DataAnno::array(format!("s{i}"), tasks as u64));
        }
        prev = Some(n);
    }
    g
}

/// A source task fanning out into `ops` independent data-parallel ops
/// (op `i` has `tasks_base + i * tasks_step` tasks), optionally merged
/// back into a sink — the ready-deque / park-wake hammer shape.
pub fn fanout(
    ops: usize,
    tasks_base: usize,
    tasks_step: usize,
    mean_cost: f64,
    cv: f64,
    sink: bool,
) -> DelirGraph {
    let mut g = DelirGraph::new();
    let src = g.add_node("src", NodeKind::Task { cost: 1.0 }, None);
    let snk = sink.then(|| g.add_node("sink", NodeKind::Merge { cost: 1.0 }, None));
    for i in 0..ops {
        let tasks = tasks_base + tasks_step * i;
        let n = g.add_node(format!("op{i}"), NodeKind::DataParallel { tasks, mean_cost, cv }, None);
        g.add_edge(src, n, DataAnno::array(format!("in{i}"), tasks as u64));
        if let Some(s) = snk {
            g.add_edge(n, s, DataAnno::array(format!("out{i}"), tasks as u64));
        }
    }
    g
}
