//! Helpers shared by the integration suites. Each test binary pulls
//! this in with `mod common;` and uses a subset of it.
#![allow(dead_code)]

pub mod shapes;

/// The fixed default seed for randomized suites (stress, chaos) when
/// [`ORCHESTRA_TEST_SEED`](test_seed) is unset.
pub const DEFAULT_TEST_SEED: u64 = 0x0c4a_05ca_11ab_5eed;

/// The RNG seed randomized suites derive schedules and task costs
/// from: the `ORCHESTRA_TEST_SEED` environment variable (decimal or
/// `0x`-prefixed hex) when set, else [`DEFAULT_TEST_SEED`]. Suites
/// include the seed in their failure messages so a failing run can be
/// reproduced exactly by exporting the printed value.
pub fn test_seed() -> u64 {
    std::env::var("ORCHESTRA_TEST_SEED")
        .ok()
        .and_then(|raw| {
            let s = raw.trim();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(&hex.replace('_', ""), 16).ok(),
                None => s.replace('_', "").parse().ok(),
            }
        })
        .unwrap_or(DEFAULT_TEST_SEED)
}

/// Whether the long chaos matrix is enabled (`ORCHESTRA_CHAOS_FULL=1`;
/// any value but `"0"` counts). The default matrix stays small enough
/// for debug-mode CI.
pub fn chaos_full() -> bool {
    std::env::var("ORCHESTRA_CHAOS_FULL").is_ok_and(|v| v != "0")
}
