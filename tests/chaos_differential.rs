//! Chaos differential suite: randomized worker-kill schedules against
//! every real backend × graph shape, checked bitwise against the
//! sequential reference.
//!
//! Kernels are pure in `(node, iter, task, cost_hint)`, so fault
//! recovery is *bitwise-verifiable by construction*: whatever workers
//! die, whenever they die, the surviving schedule must produce exactly
//! the buffers an uninterrupted sequential run produces, with every
//! task executed exactly once. The proptest-driven tests below throw
//! ≥ 100 randomized kill schedules per backend (victim × trigger ×
//! schedule length × shape) at that invariant:
//!
//! * **lease mode** — killed workers orphan their freshly claimed
//!   chunk as a lease; survivors adopt it. The run completes
//!   in-process, `crashed` stays false.
//! * **crash mode** — the first kill aborts the whole run (a simulated
//!   process death); [`execute_graph_resumable`] restores from the
//!   latest on-disk snapshot and replays the rest. Restored tasks show
//!   execution count 0 in the final attempt, replayed ones 1, and
//!   snapshot versions stay strictly monotone.
//! * **torn writes** — a truncated newest snapshot must be skipped in
//!   favor of the next older valid version, and the resume must still
//!   be bitwise-exact.
//!
//! The kill-schedule RNG derives from the proptest shim's fixed
//! per-test seed (`PROPTEST_SEED` reseeds it); task costs derive from
//! `ORCHESTRA_TEST_SEED` like the stress suite. The default case
//! counts stay debug-mode fast; `ORCHESTRA_CHAOS_FULL=1` multiplies
//! them for the scheduled long matrix.

mod common;

use common::shapes;
use orchestra_delirium::DelirGraph;
use orchestra_runtime::executor::ExecutorOptions;
use orchestra_runtime::threaded::{execute_sequential, execute_threaded, ExecutorBackend};
use orchestra_runtime::{
    execute_async, execute_graph_resumable, load_latest, snapshot_versions, CheckpointSpec,
    FaultPlan, FaultTrigger, KillSpec, ResumableRun, SpinKernel,
};
use proptest::collection;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Kill schedules per proptest target. The default meets the suite's
/// floor of 100 schedules per backend while staying debug-mode fast;
/// the full matrix triples it.
fn lease_cases() -> u32 {
    if common::chaos_full() {
        300
    } else {
        100
    }
}

/// Crash + resume cases per backend (each case runs a crashed attempt
/// plus a restore-and-replay attempt and touches the filesystem).
fn crash_cases() -> u32 {
    if common::chaos_full() {
        150
    } else {
        50
    }
}

const SHAPES: usize = 5;

/// Small instances of the five structural families — hundreds of
/// chaos replays must stay fast with debug-mode codegen. The chain
/// runs with a forced tiny stream batch so kills interleave with live
/// watermark publications on every edge.
fn chaos_graph(shape: usize) -> (&'static str, DelirGraph, ExecutorOptions) {
    let seed = common::test_seed();
    let opts = ExecutorOptions { seed, ..ExecutorOptions::default() };
    match shape {
        0 => ("flat", shapes::flat(96, 1.0, 0.6), opts),
        1 => ("dag", shapes::diamond(1.0, (48, 1.0, 0.8), (32, 1.5, 0.3), 1.0), opts),
        2 => {
            let (g, pipeline_iters) = shapes::pipeline((16, 1.0, 0.5), (6, 1.0, 0.5), 3, None);
            ("pipeline", g, ExecutorOptions { pipeline_iters, ..opts })
        }
        3 => ("mixture", shapes::mixture(&[(16, 40.0, 0.0), (48, 1.0, 0.0)], true), opts),
        _ => (
            "chain",
            shapes::chain(4, 24, 1.0, 0.5),
            ExecutorOptions { stream_batch: Some(2), ..opts },
        ),
    }
}

fn kernel() -> SpinKernel {
    SpinKernel::with_scale(0.5)
}

/// A random kill trigger. `steals` includes `OnSteal` (threaded
/// backends only — the async backend never steals).
fn trigger(steals: bool) -> BoxedStrategy<FaultTrigger> {
    let base = prop_oneof![
        (1..8u64).prop_map(FaultTrigger::AfterClaims),
        (0..4u64).prop_map(FaultTrigger::AtEpoch),
    ];
    if steals {
        prop_oneof![base, Just(FaultTrigger::OnSteal)].boxed()
    } else {
        base.boxed()
    }
}

/// 1–3 planned kills over victims `0..victims` (some may target ids
/// the run never spawns — out-of-range victims are valid no-op
/// schedule entries).
fn kills(victims: usize, steals: bool) -> impl Strategy<Value = Vec<KillSpec>> {
    collection::vec(
        (0..victims, trigger(steals)).prop_map(|(worker, trigger)| KillSpec { worker, trigger }),
        1..4usize,
    )
}

/// Bitwise comparison against the independent sequential reference.
fn assert_bitwise(
    seq: &[Vec<f64>],
    got: &[Vec<f64>],
    names: &[String],
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(seq.len(), got.len(), "{}: op count", label);
    for (i, (s, t)) in seq.iter().zip(got).enumerate() {
        for (j, (a, b)) in s.iter().zip(t).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "{}: op {} task {j}: sequential {a:?} != chaotic {b:?}",
                label,
                names[i]
            );
        }
    }
    Ok(())
}

/// A fresh, unique snapshot directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("orchestra-chaos-{}-{tag}-{n}", std::process::id()))
}

/// Shared checks for one lease-mode threaded/dist case.
fn check_threaded_lease(
    backend: ExecutorBackend,
    shape: usize,
    kill_list: Vec<KillSpec>,
) -> Result<(), TestCaseError> {
    let (name, g, opts) = chaos_graph(shape);
    let opts = ExecutorOptions {
        backend,
        threads: 3,
        faults: Some(FaultPlan { kills: kill_list.clone(), ..FaultPlan::default() }),
        ..opts
    };
    let label = format!("{backend:?}/{name}/seed={:#x}/kills={kill_list:?}", opts.seed);
    let k = kernel();
    let seq = execute_sequential(&g, &opts, &k).expect("sequential reference");
    let thr = execute_threaded(&g, &opts, &k).expect("chaotic run");
    prop_assert!(!thr.crashed, "{}: lease-mode run reported crashed", label);
    for (op, counts) in thr.ops.iter().zip(&thr.exec_counts) {
        prop_assert!(
            counts.iter().all(|&c| c == 1),
            "{}: op {} exec counts {:?} not exactly-once",
            label,
            op.name,
            counts
        );
    }
    assert_bitwise(&seq.outputs, &thr.outputs, &seq.op_names, &label)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(lease_cases()))]

    /// Shared-queue threaded backend: random kill schedules leave the
    /// run exactly-once and bitwise-exact.
    #[test]
    fn threaded_lease_kills_stay_exact(
        shape in 0..SHAPES,
        kill_list in kills(5, true),
    ) {
        check_threaded_lease(ExecutorBackend::Threaded, shape, kill_list)?;
    }

    /// Distributed-TAPER backend: kills land mid-epoch (the epoch
    /// trigger fires on real epoch tokens here), orphaned home queues
    /// are adopted, and epoch completion excuses the dead.
    #[test]
    fn dist_lease_kills_stay_exact(
        shape in 0..SHAPES,
        kill_list in kills(5, true),
    ) {
        check_threaded_lease(ExecutorBackend::ThreadedDist, shape, kill_list)?;
    }

    /// Async cooperative backend: victims are claimer futures; a
    /// killed claimer's chunk goes through the per-op orphan board.
    #[test]
    fn async_lease_kills_stay_exact(
        shape in 0..SHAPES,
        kill_list in kills(8, false),
    ) {
        let (name, g, opts) = chaos_graph(shape);
        let opts = ExecutorOptions {
            drivers: 2,
            faults: Some(FaultPlan { kills: kill_list.clone(), ..FaultPlan::default() }),
            ..opts
        };
        let label = format!("async/{name}/seed={:#x}/kills={kill_list:?}", opts.seed);
        let k = kernel();
        let seq = execute_sequential(&g, &opts, &k).expect("sequential reference");
        let run = execute_async(&g, &opts, &k).expect("chaotic run");
        prop_assert!(!run.crashed, "{}: lease-mode run reported crashed", label);
        for (op, counts) in run.ops.iter().zip(&run.exec_counts) {
            prop_assert!(
                counts.iter().all(|&c| c == 1),
                "{}: op {} exec counts {:?} not exactly-once",
                label, op.name, counts
            );
        }
        assert_bitwise(&seq.outputs, &run.outputs, &seq.op_names, &label)?;
    }
}

/// Shared checks for one crash-mode resume case on any backend.
fn check_crash_resume(
    backend: ExecutorBackend,
    shape: usize,
    victim: usize,
    trig: FaultTrigger,
) -> Result<(), TestCaseError> {
    let (name, g, opts) = chaos_graph(shape);
    let dir = scratch_dir("resume");
    let opts = ExecutorOptions {
        backend,
        threads: 3,
        drivers: 2,
        faults: Some(FaultPlan::crash(victim, trig)),
        checkpoint: Some(CheckpointSpec { dir: dir.clone(), every_claims: 2, keep: 4 }),
        ..opts
    };
    let label = format!("{backend:?}/{name}/seed={:#x}/kill={victim}@{trig:?}", opts.seed);
    let k = kernel();
    let seq = execute_sequential(&g, &opts, &k).expect("sequential reference");
    let run = execute_graph_resumable(&g, &opts, &k).expect("resumable run");
    let result = check_resumable(&seq.outputs, &seq.op_names, &run, &dir, &label);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// The resume invariants: bitwise outputs, restored tasks not
/// re-executed, replayed tasks executed once, monotone snapshot
/// versions, and a coherent recovery story.
fn check_resumable(
    seq_outputs: &[Vec<f64>],
    names: &[String],
    run: &ResumableRun,
    dir: &std::path::Path,
    label: &str,
) -> Result<(), TestCaseError> {
    assert_bitwise(seq_outputs, &run.outputs, names, label)?;
    let mut restored_total = 0usize;
    for (i, counts) in run.exec_counts.iter().enumerate() {
        for (t, &c) in counts.iter().enumerate() {
            let restored = run.restored[i][t];
            restored_total += usize::from(restored);
            prop_assert_eq!(
                c,
                u32::from(!restored),
                "{}: op {} task {}: restored={} but final-attempt count={}",
                label,
                names[i],
                t,
                restored,
                c
            );
        }
    }
    prop_assert_eq!(run.resumed_tasks, restored_total, "{}: resumed_tasks tally", label);
    prop_assert!(
        run.attempts >= 1 && run.attempts <= 3,
        "{}: {} attempts for a single planned crash",
        label,
        run.attempts
    );
    if run.attempts == 1 {
        // The kill never fired (out-of-range victim or trigger beyond
        // the schedule): a clean run restores nothing.
        prop_assert_eq!(run.resumed_tasks, 0, "{}: clean run restored tasks", label);
        prop_assert!(run.recovery_us == 0.0, "{}: clean run booked recovery time", label);
    }
    let versions = snapshot_versions(dir);
    prop_assert!(
        versions.windows(2).all(|w| w[0] < w[1]),
        "{}: snapshot versions not strictly monotone: {:?}",
        label,
        versions
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(crash_cases()))]

    /// Threaded backend crash + snapshot resume.
    #[test]
    fn threaded_crash_resume_bitwise(
        shape in 0..SHAPES,
        victim in 0..4usize,
        trig in trigger(false),
    ) {
        check_crash_resume(ExecutorBackend::Threaded, shape, victim, trig)?;
    }

    /// Dist-TAPER backend crash + snapshot resume: snapshots also cut
    /// at the §4.1.1 epoch barriers, and `AtEpoch` triggers fire on
    /// real epoch tokens.
    #[test]
    fn dist_crash_resume_bitwise(
        shape in 0..SHAPES,
        victim in 0..4usize,
        trig in trigger(false),
    ) {
        check_crash_resume(ExecutorBackend::ThreadedDist, shape, victim, trig)?;
    }

    /// Async backend crash (driver abort) + snapshot resume.
    #[test]
    fn async_crash_resume_bitwise(
        shape in 0..SHAPES,
        victim in 0..6usize,
        trig in trigger(false),
    ) {
        check_crash_resume(ExecutorBackend::Async, shape, victim, trig)?;
    }
}

/// The non-vacuousness guard for the randomized matrix: a kill at the
/// victim's *first* claim really removes it. The victim dies at the
/// claim boundary before executing anything, so its measured task
/// count is 0 and the survivor replays the whole op — including the
/// orphaned lease — exactly once.
#[test]
fn lease_kill_really_removes_the_victim() {
    let (_, g, opts) = chaos_graph(0);
    let opts = ExecutorOptions {
        backend: ExecutorBackend::Threaded,
        threads: 2,
        policy: orchestra_runtime::chunking::PolicyKind::SelfSched,
        faults: Some(FaultPlan::kill(0, FaultTrigger::AfterClaims(1))),
        ..opts
    };
    let k = kernel();
    let seq = execute_sequential(&g, &opts, &k).unwrap();
    let thr = execute_threaded(&g, &opts, &k).unwrap();
    assert!(!thr.crashed);
    assert!(thr.exec_counts.iter().flatten().all(|&c| c == 1));
    assert_eq!(seq.outputs, thr.outputs);
    assert_eq!(
        thr.worker_timing[0].count(),
        0,
        "the victim executed tasks after its first-claim kill"
    );
    assert_eq!(
        thr.worker_timing[1].count(),
        96,
        "the survivor must replay every task, including the orphaned lease"
    );
}

/// The commit/publish gap under fire: with the stream batch forced to
/// the whole op, producer chunks *commit* to the frontier on every
/// claim boundary but the watermark can only *publish* when the
/// frontier completes — so lease kills land squarely between a chunk's
/// commit and its (deferred) publication. The lease replay, scattered
/// orphan writes, and the completion-path `publish_all` must between
/// them publish each producer's watermark exactly once: a lost
/// publication would deadlock blocked consumers (the run would hang),
/// a double publication would show up in the per-op counter.
#[test]
fn kill_between_commit_and_publish_never_double_publishes() {
    let g = shapes::chain(4, 24, 1.0, 0.5);
    for backend in [ExecutorBackend::Threaded, ExecutorBackend::ThreadedDist] {
        let opts = ExecutorOptions {
            backend,
            threads: 3,
            seed: common::test_seed(),
            stream_batch: Some(usize::MAX),
            faults: Some(FaultPlan {
                kills: vec![
                    KillSpec { worker: 0, trigger: FaultTrigger::AfterClaims(1) },
                    KillSpec { worker: 1, trigger: FaultTrigger::AfterClaims(3) },
                ],
                ..FaultPlan::default()
            }),
            ..ExecutorOptions::default()
        };
        let k = kernel();
        let seq = execute_sequential(&g, &opts, &k).unwrap();
        let thr = execute_threaded(&g, &opts, &k).unwrap();
        assert!(!thr.crashed, "{backend:?}: lease-mode run reported crashed");
        assert!(thr.exec_counts.iter().flatten().all(|&c| c == 1), "{backend:?}: exactly-once");
        assert_eq!(seq.outputs, thr.outputs, "{backend:?}: bitwise");
        assert_eq!(thr.streamed_edges, 3, "{backend:?}: streaming must engage on the chain");
        for op in &thr.ops {
            assert!(
                op.watermark_pubs <= 1,
                "{backend:?}: op {} published {} times with a whole-op batch",
                op.name,
                op.watermark_pubs
            );
        }
        let pubs: u64 = thr.ops.iter().map(|o| o.watermark_pubs).sum();
        assert_eq!(pubs, 3, "{backend:?}: each streamed producer publishes exactly once");
    }
}

/// Crash + resume across the streamed data plane: the first attempt
/// dies mid-stream (watermarks partially published), and the resumed
/// attempt's remapped ops must fall back to whole-op gating without
/// re-publishing restored prefixes — bitwise-exact, restored tasks
/// never re-executed.
#[test]
fn crash_resume_mid_stream_stays_exact() {
    let g = shapes::chain(4, 16, 1.0, 0.3);
    let dir = scratch_dir("stream");
    let opts = ExecutorOptions {
        backend: ExecutorBackend::Threaded,
        threads: 3,
        seed: common::test_seed(),
        stream_batch: Some(2),
        faults: Some(FaultPlan::crash(0, FaultTrigger::AfterClaims(3))),
        checkpoint: Some(CheckpointSpec { dir: dir.clone(), every_claims: 1, keep: 8 }),
        ..ExecutorOptions::default()
    };
    let k = kernel();
    let seq = execute_sequential(&g, &opts, &k).unwrap();
    let run = execute_graph_resumable(&g, &opts, &k).unwrap();
    assert_eq!(seq.outputs, run.outputs, "mid-stream resume diverged from sequential");
    for (i, counts) in run.exec_counts.iter().enumerate() {
        for (t, &c) in counts.iter().enumerate() {
            assert_eq!(
                c,
                u32::from(!run.restored[i][t]),
                "op {i} task {t}: restored tasks must not re-execute"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash with no checkpoint spec must still converge: the resumable
/// driver simply restarts from scratch, restoring nothing.
#[test]
fn crash_without_checkpoint_restarts_from_scratch() {
    let (_, g, opts) = chaos_graph(0);
    let opts = ExecutorOptions {
        backend: ExecutorBackend::Threaded,
        threads: 3,
        faults: Some(FaultPlan::crash(0, FaultTrigger::AfterClaims(1))),
        ..opts
    };
    let k = kernel();
    let seq = execute_sequential(&g, &opts, &k).unwrap();
    let run = execute_graph_resumable(&g, &opts, &k).unwrap();
    assert_eq!(run.attempts, 2, "first attempt must crash, second must finish");
    assert_eq!(run.resumed_tasks, 0, "no snapshots to restore from");
    assert_eq!(seq.outputs, run.outputs);
    assert!(run.exec_counts.iter().flatten().all(|&c| c == 1));
    assert!(run.recovery_us > 0.0);
}

/// Torn-write recovery: truncate the newest snapshot mid-record and
/// the loader must fall back to the next older valid version; a
/// crash + resume against the torn directory stays bitwise-exact.
#[test]
fn torn_snapshot_falls_back_to_older_version() {
    let (_, g, opts) = chaos_graph(0);
    let dir = scratch_dir("torn");
    let k = kernel();
    let fingerprint = orchestra_runtime::graph_fingerprint(&g, &opts).unwrap();

    // Stage 1: a clean checkpointed run fills the directory with
    // several snapshot versions.
    let seed_opts = ExecutorOptions {
        backend: ExecutorBackend::Threaded,
        threads: 2,
        checkpoint: Some(CheckpointSpec { dir: dir.clone(), every_claims: 1, keep: 64 }),
        ..opts.clone()
    };
    let seq = execute_sequential(&g, &seed_opts, &k).unwrap();
    execute_threaded(&g, &seed_opts, &k).unwrap();
    let versions = snapshot_versions(&dir);
    assert!(versions.len() >= 2, "need ≥ 2 snapshots to test fallback, got {versions:?}");

    // Stage 2: tear the newest snapshot — chop off its crc tail. The
    // loader must skip it and serve the next older version.
    let newest = versions[versions.len() - 1];
    let fallback = versions[versions.len() - 2];
    let newest_path = dir.join(format!("ckpt-{newest:016x}.bin"));
    let bytes = std::fs::read(&newest_path).unwrap();
    assert!(bytes.len() > 8);
    std::fs::write(&newest_path, &bytes[..bytes.len() - 7]).unwrap();
    let loaded = load_latest(&dir, fingerprint).expect("an older valid snapshot");
    assert_eq!(loaded.version(), fallback, "loader did not fall back past the torn file");

    // Stage 3: crash + resume with the claim cadence off, so the torn
    // file stays the newest on disk and recovery must go through the
    // fallback path. The resumed run is still bitwise-exact.
    let crash_opts = ExecutorOptions {
        threads: 3,
        faults: Some(FaultPlan::crash(0, FaultTrigger::AfterClaims(1))),
        checkpoint: Some(CheckpointSpec { dir: dir.clone(), every_claims: 0, keep: 64 }),
        ..seed_opts.clone()
    };
    let run = execute_graph_resumable(&g, &crash_opts, &k).unwrap();
    assert_eq!(run.attempts, 2);
    assert_eq!(
        run.resumed_tasks,
        loaded.completed_tasks(),
        "resume did not restore the fallback snapshot's frontier"
    );
    assert_eq!(seq.outputs, run.outputs, "torn-write resume diverged from sequential");
    for (i, counts) in run.exec_counts.iter().enumerate() {
        for (t, &c) in counts.iter().enumerate() {
            assert_eq!(c, u32::from(!run.restored[i][t]), "op {i} task {t}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpointing alone (no faults) must not perturb results, and a
/// completed run's snapshots must be strictly monotone and loadable.
#[test]
fn checkpointing_clean_run_is_invisible_and_monotone() {
    for shape in 0..SHAPES {
        let (name, g, opts) = chaos_graph(shape);
        let dir = scratch_dir("clean");
        let run_opts = ExecutorOptions {
            backend: ExecutorBackend::ThreadedDist,
            threads: 3,
            checkpoint: Some(CheckpointSpec { dir: dir.clone(), every_claims: 2, keep: 4 }),
            ..opts
        };
        let k = kernel();
        let seq = execute_sequential(&g, &run_opts, &k).unwrap();
        let thr = execute_threaded(&g, &run_opts, &k).unwrap();
        assert!(!thr.crashed);
        assert_eq!(seq.outputs, thr.outputs, "{name}: checkpointing changed results");
        let versions = snapshot_versions(&dir);
        assert!(versions.windows(2).all(|w| w[0] < w[1]), "{name}: versions {versions:?}");
        assert!(versions.len() <= 4, "{name}: pruning kept {} versions", versions.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Shared checks for one *combined*-failure case: a lease-mode kill
/// recovers in-process, and a crash-mode kill aborts the same run —
/// the way real incidents compound (a worker dies, the survivors
/// absorb its lease, then the whole process goes down). Resume must
/// still replay to the bitwise sequential result.
fn check_combined_failure(
    backend: ExecutorBackend,
    shape: usize,
    lease_victim: usize,
    lease_claims: u64,
    crash_victim: usize,
    crash_claims: u64,
) -> Result<(), TestCaseError> {
    let (name, g, opts) = chaos_graph(shape);
    let dir = scratch_dir("combined");
    let opts = ExecutorOptions {
        backend,
        threads: 3,
        drivers: 2,
        faults: Some(FaultPlan::combined(
            vec![KillSpec {
                worker: lease_victim,
                trigger: FaultTrigger::AfterClaims(lease_claims),
            }],
            KillSpec { worker: crash_victim, trigger: FaultTrigger::AfterClaims(crash_claims) },
        )),
        checkpoint: Some(CheckpointSpec { dir: dir.clone(), every_claims: 2, keep: 4 }),
        ..opts
    };
    let label = format!(
        "{backend:?}/{name}/seed={:#x}/lease={lease_victim}@{lease_claims}/crash={crash_victim}@{crash_claims}",
        opts.seed
    );
    let k = kernel();
    let seq = execute_sequential(&g, &opts, &k).expect("sequential reference");
    let run = execute_graph_resumable(&g, &opts, &k).expect("combined resumable run");
    // The generic resume invariants (bitwise outputs, restored tasks
    // never re-executed, monotone snapshot versions) carry over
    // wholesale; the combined plan has exactly one crash kill, so the
    // attempt bound of `check_resumable` still holds.
    let result = check_resumable(&seq.outputs, &seq.op_names, &run, &dir, &label);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Combined cases per backend — each runs a doubly-faulted attempt
/// plus a restore-and-replay attempt.
fn combined_cases() -> u32 {
    if common::chaos_full() {
        100
    } else {
        35
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(combined_cases()))]

    /// Threaded backend: lease kill + later crash in one run.
    #[test]
    fn threaded_combined_lease_and_crash_bitwise(
        shape in 0..SHAPES,
        lease_victim in 0..3usize,
        lease_claims in 1..4u64,
        crash_victim in 0..3usize,
        crash_claims in 4..10u64,
    ) {
        check_combined_failure(
            ExecutorBackend::Threaded, shape, lease_victim, lease_claims, crash_victim, crash_claims,
        )?;
    }

    /// Dist-TAPER backend: the lease recovery adopts the dead home
    /// queue, then the crash cuts the run at an epoch-tagged claim.
    #[test]
    fn dist_combined_lease_and_crash_bitwise(
        shape in 0..SHAPES,
        lease_victim in 0..3usize,
        lease_claims in 1..4u64,
        crash_victim in 0..3usize,
        crash_claims in 4..10u64,
    ) {
        check_combined_failure(
            ExecutorBackend::ThreadedDist, shape, lease_victim, lease_claims, crash_victim, crash_claims,
        )?;
    }

    /// Async backend: a claimer's orphaned chunk is adopted by a
    /// sibling, then a crash kill aborts the scheduler.
    #[test]
    fn async_combined_lease_and_crash_bitwise(
        shape in 0..SHAPES,
        lease_victim in 0..6usize,
        lease_claims in 1..4u64,
        crash_victim in 0..6usize,
        crash_claims in 4..10u64,
    ) {
        check_combined_failure(
            ExecutorBackend::Async, shape, lease_victim, lease_claims, crash_victim, crash_claims,
        )?;
    }
}

/// The non-vacuousness guard for the combined matrix: with both kills
/// on fixed early triggers, the first attempt really does absorb a
/// lease *and* crash, and the resume still lands bitwise.
#[test]
fn combined_failure_really_fires_both_kills() {
    let (_, g, opts) = chaos_graph(0);
    let dir = scratch_dir("combined-pinned");
    let opts = ExecutorOptions {
        backend: ExecutorBackend::Threaded,
        // Two workers make the schedule deterministic: worker 0 dies on
        // its first claim, so worker 1 is the *only* surviving claimer
        // and its per-worker claim counter must reach 4. (With a third
        // worker the one that wins the every-claim snapshot slot blocks
        // in the fsync while the other drains the queue, and the victim
        // may never reach its trigger.)
        threads: 2,
        policy: orchestra_runtime::PolicyKind::SelfSched,
        faults: Some(FaultPlan::combined(
            vec![KillSpec { worker: 0, trigger: FaultTrigger::AfterClaims(1) }],
            KillSpec { worker: 1, trigger: FaultTrigger::AfterClaims(4) },
        )),
        checkpoint: Some(CheckpointSpec { dir: dir.clone(), every_claims: 1, keep: 8 }),
        ..opts
    };
    let k = kernel();
    let seq = execute_sequential(&g, &opts, &k).unwrap();
    let run = execute_graph_resumable(&g, &opts, &k).unwrap();
    assert_eq!(run.attempts, 2, "the crash kill must fire and force a resume");
    assert!(run.resumed_tasks > 0, "the resume must restore from a snapshot");
    assert_eq!(seq.outputs, run.outputs, "combined failure diverged from sequential");
    let _ = std::fs::remove_dir_all(&dir);
}
