//! Differential tests pinning the threaded distributed-TAPER backend
//! against the invariants the simulator's
//! [`DistResult`](orchestra_runtime::DistResult) establishes:
//! exactly-once execution, locality ∈ [0,1], zero re-assignments on
//! uniform-cost workloads (the cv gate), forced migration on
//! concentrated ones, and monotone epoch times. Outputs are compared
//! bitwise against the independent sequential reference on every graph
//! shape, exactly like the shared-queue differential suite.
//!
//! Graph shapes come from the shared builders in `common::shapes`,
//! parameterized for the dist backend: the flat shape uses uniform
//! costs (cv = 0) to pin the cv gate shut, and the skewed shape
//! interleaves 400× heavier tasks into worker 0's home block to force
//! it open.

mod common;

use common::shapes;
use orchestra_delirium::DelirGraph;
use orchestra_runtime::executor::ExecutorOptions;
use orchestra_runtime::threaded::{
    execute_sequential, execute_threaded, ExecutorBackend, SpinKernel, ThreadedRun,
};

fn dist_opts(threads: usize) -> ExecutorOptions {
    ExecutorOptions {
        backend: ExecutorBackend::ThreadedDist,
        threads,
        ..ExecutorOptions::default()
    }
}

/// Runs the graph under threaded dist-TAPER and checks every invariant
/// that must hold regardless of workload shape; returns the run for
/// shape-specific assertions.
fn run_and_check(g: &DelirGraph, opts: &ExecutorOptions, label: &str) -> ThreadedRun {
    let kernel = SpinKernel::with_scale(2.0);
    let seq = execute_sequential(g, opts, &kernel).expect("sequential reference");
    let thr = execute_threaded(g, opts, &kernel).expect("dist-TAPER run");
    for (op, counts) in thr.ops.iter().zip(&thr.exec_counts) {
        assert!(
            counts.iter().all(|&c| c == 1),
            "{label}: op {} has a task executed != once under migration",
            op.name
        );
    }
    assert_eq!(seq.outputs.len(), thr.outputs.len(), "{label}: op count");
    for (i, (a, b)) in seq.outputs.iter().zip(&thr.outputs).enumerate() {
        assert_eq!(a, b, "{label}: op {} buffers diverge", seq.op_names[i]);
    }
    assert!(
        (0.0..=1.0).contains(&thr.locality),
        "{label}: locality {} outside [0,1]",
        thr.locality
    );
    for op in &thr.ops {
        assert!(
            op.epoch_times_us.windows(2).all(|w| w[0] <= w[1]),
            "{label}: op {} epoch times not monotone: {:?}",
            op.name,
            op.epoch_times_us
        );
        assert_eq!(op.epochs, op.epoch_times_us.len(), "{label}: epoch count mismatch");
    }
    thr
}

/// One wide uniform op: cv = 0, so the gate must stay shut.
fn flat_graph(tasks: usize) -> DelirGraph {
    shapes::flat(tasks, 3.0, 0.0)
}

/// Task → two parallel ops → merge: dist ops behind dependencies, so
/// enabling must token every worker (the migration-aware wakeup path).
fn dag_graph() -> DelirGraph {
    shapes::diamond(2.0, (96, 2.0, 0.6), (64, 3.0, 0.3), 1.0)
}

/// A pipeline group with a carried edge, unrolled over 4 iterations:
/// many small dist-op instances racing through the enable path.
fn pipeline_graph() -> (DelirGraph, ExecutorOptions) {
    let (g, pipeline_iters) = shapes::pipeline((24, 2.0, 0.4), (8, 2.0, 0.4), 4, None);
    let mut opts = dist_opts(2);
    opts.pipeline_iters = pipeline_iters;
    (g, opts)
}

/// A two-population mixture whose heavy tasks interleave into the low
/// indices — i.e. into worker 0's home block — while the cost mixture
/// drives cv far above the gate. Worker 1 races through its light home
/// and must force the coordinator to re-assign worker 0's unstarted
/// work.
fn skewed_graph() -> DelirGraph {
    shapes::mixture(&[(32, 400.0, 0.0), (224, 1.0, 0.0)], false)
}

#[test]
fn uniform_costs_zero_migration_all_thread_counts() {
    for threads in [1, 2, 4] {
        let g = flat_graph(400);
        let opts = dist_opts(threads);
        let thr = run_and_check(&g, &opts, &format!("uniform/{threads}t"));
        // The cv gate: uniform costs show no imbalance, so the root
        // must never re-assign and every task stays home.
        assert_eq!(thr.reassignments, 0, "{threads}t: re-assigned uniform work");
        assert_eq!(thr.migrated_tasks, 0, "{threads}t: migrated uniform work");
        assert!((thr.locality - 1.0).abs() < 1e-12, "{threads}t: locality {}", thr.locality);
    }
}

#[test]
fn dag_shape_exactly_once() {
    for threads in [2, 4] {
        let g = dag_graph();
        let thr = run_and_check(&g, &dist_opts(threads), &format!("dag/{threads}t"));
        assert_eq!(thr.stats.total_tasks(), 96 + 64 + 2);
    }
}

#[test]
fn pipeline_shape_exactly_once() {
    let (g, opts) = pipeline_graph();
    run_and_check(&g, &opts, "pipeline");
}

#[test]
fn forced_migration_reassigns_and_stays_exactly_once() {
    let g = skewed_graph();
    let thr = run_and_check(&g, &dist_opts(2), "skewed/2t");
    assert!(
        thr.reassignments >= 1,
        "concentrated costs must trigger re-assignment, got {}",
        thr.reassignments
    );
    assert!(thr.migrated_tasks > 0, "re-assignment without migrated tasks");
    assert!(thr.locality < 1.0, "migration must show in locality, got {}", thr.locality);
    assert!(thr.locality >= 0.0);
    // The metrics surface per op too.
    let op = &thr.ops[0];
    assert_eq!(op.reassignments, thr.reassignments);
    assert_eq!(op.migrated, thr.migrated_tasks);
}

#[test]
fn skewed_graph_repeated_runs_stay_sound() {
    // Migration timing varies run to run; exactly-once and bitwise
    // equality must not.
    let g = skewed_graph();
    for round in 0..3 {
        run_and_check(&g, &dist_opts(2), &format!("skewed round {round}"));
    }
}

/// The full affinity matrix: pinning {off, on} × topology {probed,
/// synthetic 2-node} over both the uniform and the skewed workload.
/// Pinning and placement must never affect correctness — exactly-once,
/// bitwise equality, and the cv gate hold whether workers are pinned,
/// floating, or placed on a topology wider than the host (where the
/// pin syscall fails and the worker falls back to floating). Under the
/// synthetic 2-node mode the run must also report that topology's
/// fingerprint, and remote re-assignments can never exceed total
/// re-assignments.
#[test]
fn pinning_and_topology_modes_preserve_invariants() {
    use orchestra_runtime::TopologyMode;
    for pin_workers in [false, true] {
        for (tname, topology) in [
            ("auto", TopologyMode::Auto),
            ("synthetic", TopologyMode::Synthetic { nodes: 2, cores_per_node: 2, smt: 1 }),
        ] {
            let mut opts = dist_opts(4);
            opts.pin_workers = pin_workers;
            opts.topology = topology;
            let label = format!("affinity/pin={pin_workers}/{tname}");

            let uniform = run_and_check(&flat_graph(400), &opts, &format!("{label}/uniform"));
            assert_eq!(uniform.reassignments, 0, "{label}: re-assigned uniform work");
            assert_eq!(uniform.migrated_tasks, 0, "{label}: migrated uniform work");

            let skewed = run_and_check(&skewed_graph(), &opts, &format!("{label}/skewed"));
            assert!(
                skewed.remote_reassignments <= skewed.reassignments,
                "{label}: remote re-assignments {} exceed total {}",
                skewed.remote_reassignments,
                skewed.reassignments
            );
            for thr in [&uniform, &skewed] {
                assert!(
                    thr.pinned_workers <= 4,
                    "{label}: pinned {} of 4 workers",
                    thr.pinned_workers
                );
                if tname == "synthetic" {
                    assert_eq!(thr.topology.source, "synthetic", "{label}: fingerprint source");
                    assert_eq!(thr.topology.nodes, 2, "{label}: fingerprint nodes");
                }
            }
        }
    }
}

#[test]
fn shared_backend_reports_no_dist_metrics() {
    let g = flat_graph(200);
    let opts = ExecutorOptions {
        backend: ExecutorBackend::Threaded,
        threads: 2,
        ..ExecutorOptions::default()
    };
    let kernel = SpinKernel::with_scale(2.0);
    let thr = execute_threaded(&g, &opts, &kernel).expect("shared run");
    assert_eq!(thr.reassignments, 0);
    assert_eq!(thr.migrated_tasks, 0);
    assert!((thr.locality - 1.0).abs() < 1e-12);
    assert!(thr.ops.iter().all(|o| o.epochs == 0 && o.epoch_times_us.is_empty()));
}
