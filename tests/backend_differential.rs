//! Differential tests: the threaded backend against an independent
//! sequential reference.
//!
//! For every chunk policy × sample graph, real-thread execution must
//! (a) run every task exactly once — no chunk lost or duplicated by
//! the concurrent claim queue — and (b) produce bit-identical output
//! buffers to a single-threaded in-order execution. Kernels are pure
//! in `(node, iter, task)`, so any divergence is a scheduling bug, not
//! floating-point noise.
//!
//! Graph shapes come from the shared builders in `common::shapes`;
//! worker counts are capped at 2 so results don't depend on how many
//! cores CI happens to give us.

mod common;

use common::shapes;
use orchestra_delirium::DelirGraph;
use orchestra_runtime::chunking::PolicyKind;
use orchestra_runtime::executor::ExecutorOptions;
use orchestra_runtime::threaded::{execute_sequential, execute_threaded, SpinKernel};
use proptest::prelude::*;

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::SelfSched,
    PolicyKind::Gss,
    PolicyKind::Factoring,
    PolicyKind::Taper,
    PolicyKind::TaperCostFn,
];

/// A flat shape: one wide data-parallel node, nothing else.
fn flat_graph() -> (DelirGraph, ExecutorOptions) {
    (shapes::flat(256, 1.5, 0.6), ExecutorOptions { threads: 2, ..ExecutorOptions::default() })
}

/// A plain DAG: task → data-parallel fan-out → merge.
fn dag_graph() -> (DelirGraph, ExecutorOptions) {
    let g = shapes::diamond(4.0, (160, 2.0, 0.9), (96, 1.5, 0.2), 2.0);
    (g, ExecutorOptions { threads: 2, ..ExecutorOptions::default() })
}

/// A pipeline group with a carried edge, plus a downstream consumer.
fn pipeline_graph() -> (DelirGraph, ExecutorOptions) {
    let (g, pipeline_iters) = shapes::pipeline((48, 2.0, 0.5), (12, 2.0, 0.5), 4, Some(64));
    (g, ExecutorOptions { threads: 2, pipeline_iters, ..ExecutorOptions::default() })
}

/// A mixture node (two cost populations) feeding a merge.
fn mixture_graph() -> (DelirGraph, ExecutorOptions) {
    let g = shapes::mixture(&[(90, 1.0, 0.1), (30, 6.0, 0.8)], true);
    (g, ExecutorOptions { threads: 2, ..ExecutorOptions::default() })
}

/// A deep equal-width chain: every edge streams through watermarks on
/// the real backends (chunk-granularity pipelining on by default).
fn chain_graph() -> (DelirGraph, ExecutorOptions) {
    (shapes::chain(10, 24, 1.0, 0.4), ExecutorOptions { threads: 2, ..ExecutorOptions::default() })
}

fn graphs() -> Vec<(&'static str, DelirGraph, ExecutorOptions)> {
    let (g0, o0) = flat_graph();
    let (g1, o1) = dag_graph();
    let (g2, o2) = pipeline_graph();
    let (g3, o3) = mixture_graph();
    let (g4, o4) = chain_graph();
    vec![
        ("flat", g0, o0),
        ("dag", g1, o1),
        ("pipeline", g2, o2),
        ("mixture", g3, o3),
        ("chain", g4, o4),
    ]
}

#[test]
fn every_policy_executes_each_task_exactly_once() {
    let kernel = SpinKernel::with_scale(2.0);
    for (name, g, opts) in graphs() {
        for policy in POLICIES {
            let opts = ExecutorOptions { policy, ..opts.clone() };
            let run = execute_threaded(&g, &opts, &kernel).unwrap();
            for (op, counts) in run.ops.iter().zip(&run.exec_counts) {
                assert!(
                    counts.iter().all(|&c| c == 1),
                    "{name}/{}: op {} task exec counts {counts:?}",
                    policy.name(),
                    op.name,
                );
            }
            let total: u64 = run.exec_counts.iter().map(|c| c.len() as u64).sum();
            assert_eq!(
                run.stats.total_tasks(),
                total,
                "{name}/{}: worker task accounting mismatch",
                policy.name()
            );
        }
    }
}

#[test]
fn threaded_results_bit_identical_to_sequential() {
    let kernel = SpinKernel::with_scale(2.0);
    for (name, g, opts) in graphs() {
        let seq = execute_sequential(&g, &opts, &kernel).unwrap();
        for policy in POLICIES {
            let opts = ExecutorOptions { policy, ..opts.clone() };
            let thr = execute_threaded(&g, &opts, &kernel).unwrap();
            assert_eq!(seq.outputs.len(), thr.outputs.len(), "{name}: op count");
            for (i, (s, t)) in seq.outputs.iter().zip(&thr.outputs).enumerate() {
                for (j, (a, b)) in s.iter().zip(t).enumerate() {
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "{name}/{}: op {} task {j}: sequential {a:?} != threaded {b:?}",
                        policy.name(),
                        seq.op_names[i],
                    );
                }
            }
        }
    }
}

/// Pinning, synthetic placement, and both steal orders must be
/// invisible to results: bit-identical outputs and exactly-once
/// execution on every sample graph, whether workers float (pin off),
/// pin to probed CPUs, or attempt pins against a synthetic topology
/// wider than the host (where the syscall fails and the worker keeps
/// floating).
#[test]
fn affinity_and_steal_order_do_not_change_results() {
    use orchestra_runtime::{StealOrder, TopologyMode};
    let kernel = SpinKernel::with_scale(2.0);
    for (name, g, opts) in graphs() {
        let seq = execute_sequential(&g, &opts, &kernel).unwrap();
        for pin_workers in [false, true] {
            for topology in [
                TopologyMode::Auto,
                TopologyMode::Synthetic { nodes: 2, cores_per_node: 4, smt: 2 },
            ] {
                for steal_order in [StealOrder::Hierarchical, StealOrder::Ring] {
                    let opts = ExecutorOptions {
                        policy: PolicyKind::Taper,
                        pin_workers,
                        topology,
                        steal_order,
                        ..opts.clone()
                    };
                    let label = format!("{name}/pin={pin_workers}/{topology:?}/{steal_order:?}");
                    let thr = execute_threaded(&g, &opts, &kernel).unwrap();
                    for (op, counts) in thr.ops.iter().zip(&thr.exec_counts) {
                        assert!(
                            counts.iter().all(|&c| c == 1),
                            "{label}: op {} task exec counts {counts:?}",
                            op.name
                        );
                    }
                    assert_eq!(seq.outputs, thr.outputs, "{label}: buffers diverge");
                }
            }
        }
    }
}

#[test]
fn barrier_mode_matches_too() {
    // pipeline_overlap=false changes the dependency structure (more
    // serialization), never the results.
    let kernel = SpinKernel::with_scale(2.0);
    let (g, opts) = pipeline_graph();
    let opts = ExecutorOptions { pipeline_overlap: false, ..opts };
    let seq = execute_sequential(&g, &opts, &kernel).unwrap();
    let thr = execute_threaded(&g, &opts, &kernel).unwrap();
    assert_eq!(seq.outputs, thr.outputs);
}

/// The streamed data plane engages, and `pipeline_overlap = false`
/// really disables it on the real backends: with overlap on (the
/// default) every chain edge streams through watermarks on threaded,
/// dist, and async runs; with overlap off all three fall back to
/// whole-op gating (zero streamed edges, zero publications), and both
/// modes stay bitwise equal to the sequential reference.
#[test]
fn streaming_engages_on_chains_and_pipeline_overlap_gates_it() {
    use orchestra_runtime::execute_async;
    use orchestra_runtime::threaded::ExecutorBackend;
    let kernel = SpinKernel::with_scale(2.0);
    let (g, base) = chain_graph();
    let edges = 9; // depth 10 chain
    let seq = execute_sequential(&g, &base, &kernel).unwrap();
    for pipeline_overlap in [true, false] {
        let opts = ExecutorOptions { pipeline_overlap, ..base.clone() };
        let thr = execute_threaded(&g, &opts, &kernel).unwrap();
        let dist_opts = ExecutorOptions { backend: ExecutorBackend::ThreadedDist, ..opts.clone() };
        let dist = execute_threaded(&g, &dist_opts, &kernel).unwrap();
        let asy = execute_async(&g, &opts, &kernel).unwrap();
        assert_eq!(seq.outputs, thr.outputs, "overlap={pipeline_overlap}: threaded");
        assert_eq!(seq.outputs, dist.outputs, "overlap={pipeline_overlap}: dist");
        assert_eq!(seq.outputs, asy.outputs, "overlap={pipeline_overlap}: async");
        let expect = if pipeline_overlap { edges } else { 0 };
        assert_eq!(thr.streamed_edges, expect, "overlap={pipeline_overlap}: threaded edges");
        assert_eq!(dist.streamed_edges, expect, "overlap={pipeline_overlap}: dist edges");
        assert_eq!(asy.streamed_edges, expect, "overlap={pipeline_overlap}: async edges");
        if pipeline_overlap {
            // Each of the 9 producers publishes its watermark at least
            // once (the completion flush at minimum).
            assert!(thr.watermark_pubs >= edges as u64, "threaded pubs {}", thr.watermark_pubs);
            assert!(asy.watermark_pubs >= edges as u64, "async pubs {}", asy.watermark_pubs);
        } else {
            assert_eq!(thr.watermark_pubs, 0, "barrier mode must not publish");
            assert_eq!(asy.watermark_pubs, 0, "barrier mode must not publish");
        }
    }
}

/// The headline cross-backend invariant: threaded, threaded-dist, and
/// async execution all produce buffers bit-identical to the sequential
/// reference on every shape (flat / DAG / pipeline / skewed mixture).
/// Kernels are pure in `(node, iter, task)`, so this holds regardless
/// of which thread, home queue, or driver ran each task.
#[test]
fn all_backends_bit_identical_on_all_shapes() {
    use orchestra_runtime::execute_async;
    use orchestra_runtime::threaded::ExecutorBackend;
    let kernel = SpinKernel::with_scale(2.0);
    for (name, g, opts) in graphs() {
        for policy in [PolicyKind::SelfSched, PolicyKind::Taper] {
            let opts = ExecutorOptions { policy, ..opts.clone() };
            let seq = execute_sequential(&g, &opts, &kernel).unwrap();
            let thr = execute_threaded(&g, &opts, &kernel).unwrap();
            let dist_opts =
                ExecutorOptions { backend: ExecutorBackend::ThreadedDist, ..opts.clone() };
            let dist = execute_threaded(&g, &dist_opts, &kernel).unwrap();
            let asy = execute_async(&g, &opts, &kernel).unwrap();
            assert_eq!(seq.outputs, thr.outputs, "{name}/{}: threaded", policy.name());
            assert_eq!(seq.outputs, dist.outputs, "{name}/{}: threaded-dist", policy.name());
            assert_eq!(seq.outputs, asy.outputs, "{name}/{}: async", policy.name());
        }
    }
}

#[test]
fn backend_dispatch_runs_threaded_from_execute_graph() {
    use orchestra_machine::MachineConfig;
    use orchestra_runtime::threaded::ExecutorBackend;
    let (g, opts) = dag_graph();
    let opts = ExecutorOptions { backend: ExecutorBackend::Threaded, ..opts };
    let report =
        orchestra_runtime::executor::execute_graph(&g, &MachineConfig::ncube2(64), &opts).unwrap();
    // Real run: the processor count is the worker count, not the
    // simulated machine's 64.
    assert_eq!(report.processors, 2);
    assert_eq!(report.nodes.len(), 4);
    assert!(report.finish > 0.0);
    assert!(report.speedup() <= 2.0 + 1e-9);
}

/// The zero-copy data plane made observable: [`ReduceKernel`] folds a
/// value read from every upstream input slice into each task, so a
/// stale, truncated, or mis-offset arena hand-off changes output bits
/// on DAG-shaped graphs. All four backends must still match the
/// sequential owned-buffer reference exactly.
#[test]
fn reduce_kernel_dataplane_bitwise_across_backends() {
    use orchestra_runtime::execute_async;
    use orchestra_runtime::threaded::ExecutorBackend;
    use orchestra_runtime::ReduceKernel;
    let kernel = ReduceKernel::with_scale(2.0);
    for (name, g, opts) in graphs() {
        for policy in POLICIES {
            let opts = ExecutorOptions { policy, ..opts.clone() };
            let seq = execute_sequential(&g, &opts, &kernel).unwrap();
            let thr = execute_threaded(&g, &opts, &kernel).unwrap();
            let dist_opts =
                ExecutorOptions { backend: ExecutorBackend::ThreadedDist, ..opts.clone() };
            let dist = execute_threaded(&g, &dist_opts, &kernel).unwrap();
            let asy = execute_async(&g, &opts, &kernel).unwrap();
            assert_eq!(seq.outputs, thr.outputs, "{name}/{}: threaded inputs", policy.name());
            assert_eq!(seq.outputs, dist.outputs, "{name}/{}: dist inputs", policy.name());
            assert_eq!(seq.outputs, asy.outputs, "{name}/{}: async inputs", policy.name());
        }
    }
}

/// A concurrent level with two *asymmetric* data-parallel ops: `B`
/// carries 8× the tasks of `C` at 4× the per-task cost, so the §4.1.2
/// equalizer must give them very different processor partitions and
/// the light op's workers migrate to the heavy op mid-level.
fn asymmetric_concurrent_graph() -> DelirGraph {
    shapes::diamond(2.0, (256, 4.0, 0.8), (32, 1.0, 0.2), 1.0)
}

/// The tentpole invariant: partitioning the worker pool between
/// concurrent ops — including the re-equalization that migrates a
/// fast op's freed workers into the laggard's partition — moves
/// *where* a task runs, never what it computes. Every backend must
/// stay bitwise equal to the sequential reference with the equalizer
/// on and off, at a worker count (4) that forces a real partition.
#[test]
fn concurrent_level_bitwise_equal_with_and_without_allocation() {
    use orchestra_runtime::execute_async;
    use orchestra_runtime::threaded::ExecutorBackend;
    let kernel = SpinKernel::with_scale(2.0);
    let g = asymmetric_concurrent_graph();
    for use_allocation in [true, false] {
        for policy in [PolicyKind::SelfSched, PolicyKind::Taper] {
            let opts = ExecutorOptions {
                policy,
                threads: 4,
                use_allocation,
                ..ExecutorOptions::default()
            };
            let label = format!("alloc={use_allocation}/{}", policy.name());
            let seq = execute_sequential(&g, &opts, &kernel).unwrap();
            let thr = execute_threaded(&g, &opts, &kernel).unwrap();
            let dist_opts =
                ExecutorOptions { backend: ExecutorBackend::ThreadedDist, ..opts.clone() };
            let dist = execute_threaded(&g, &dist_opts, &kernel).unwrap();
            let asy = execute_async(&g, &opts, &kernel).unwrap();
            for (op, counts) in thr.ops.iter().zip(&thr.exec_counts) {
                assert!(
                    counts.iter().all(|&c| c == 1),
                    "{label}: op {} task exec counts {counts:?}",
                    op.name,
                );
            }
            assert_eq!(seq.outputs, thr.outputs, "{label}: threaded");
            assert_eq!(seq.outputs, dist.outputs, "{label}: threaded-dist");
            assert_eq!(seq.outputs, asy.outputs, "{label}: async");
        }
    }
}

/// With allocation on, reported per-op processor counts must be the
/// equalizer's actual decision, not the pool size: the two concurrent
/// ops' `procs` sum to the pool, the 8×-heavier op gets the larger
/// share, and single-op levels keep the whole pool. Checked on all
/// three real backends and on the `NodeReport`s surfaced through
/// `execute_graph`.
#[test]
fn equalizer_procs_sum_to_pool_size_per_concurrent_level() {
    use orchestra_machine::MachineConfig;
    use orchestra_runtime::execute_async;
    use orchestra_runtime::threaded::ExecutorBackend;
    let kernel = SpinKernel::with_scale(2.0);
    let g = asymmetric_concurrent_graph();
    let opts = ExecutorOptions {
        policy: PolicyKind::Taper,
        threads: 4,
        use_allocation: true,
        ..ExecutorOptions::default()
    };

    let check = |procs_of: &dyn Fn(&str) -> usize, pool: usize, label: &str| {
        let (b, c) = (procs_of("B"), procs_of("C"));
        assert_eq!(b + c, pool, "{label}: concurrent level must sum to the pool");
        assert!(b >= 1 && c >= 1, "{label}: every op keeps at least one processor");
        assert!(b > c, "{label}: the 8x-heavier op must get the larger share (B={b}, C={c})");
        assert_eq!(procs_of("A"), pool, "{label}: single-op level keeps the pool");
        assert_eq!(procs_of("D"), pool, "{label}: single-op level keeps the pool");
    };

    let thr = execute_threaded(&g, &opts, &kernel).unwrap();
    check(&|name| thr.ops.iter().find(|o| o.name == name).unwrap().procs, thr.workers, "threaded");

    let dist_opts = ExecutorOptions { backend: ExecutorBackend::ThreadedDist, ..opts.clone() };
    let dist = execute_threaded(&g, &dist_opts, &kernel).unwrap();
    check(
        &|name| dist.ops.iter().find(|o| o.name == name).unwrap().procs,
        dist.workers,
        "threaded-dist",
    );

    let asy = execute_async(&g, &opts, &kernel).unwrap();
    check(&|name| asy.ops.iter().find(|o| o.name == name).unwrap().procs, asy.drivers, "async");

    // And the allocation must survive into the unified report.
    let opts = ExecutorOptions { backend: ExecutorBackend::Threaded, ..opts };
    let report =
        orchestra_runtime::executor::execute_graph(&g, &MachineConfig::ncube2(64), &opts).unwrap();
    check(
        &|name| report.nodes.iter().find(|n| n.name == name).unwrap().procs,
        report.processors,
        "execute_graph",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arena aliasing/bounds fuzz: random fan-out DAGs give the output
    /// arena ragged spans (op `i` has `base + i·step` tasks) and give
    /// every sink real multi-input reads. If any backend's chunk views
    /// overlapped, scattered writes crossed a span, or an input slice
    /// came from the wrong span, the [`ReduceKernel`] fold would
    /// diverge from the sequential owned-buffer reference bitwise (or
    /// the arena's bounds checks would panic the run outright).
    #[test]
    fn arena_dataplane_matches_owned_buffers_on_random_fanouts(
        ops in 1usize..5,
        tasks_base in 1usize..64,
        tasks_step in 0usize..32,
        mean_cost in 0.5f64..4.0,
        cv in 0.0f64..1.2,
        sink in proptest::bool::ANY,
    ) {
        use orchestra_runtime::execute_async;
        use orchestra_runtime::threaded::ExecutorBackend;
        use orchestra_runtime::ReduceKernel;
        let g = shapes::fanout(ops, tasks_base, tasks_step, mean_cost, cv, sink);
        let kernel = ReduceKernel::with_scale(1.0);
        for policy in [PolicyKind::SelfSched, PolicyKind::Taper] {
            let opts = ExecutorOptions { policy, threads: 2, ..ExecutorOptions::default() };
            let seq = execute_sequential(&g, &opts, &kernel).unwrap();
            let thr = execute_threaded(&g, &opts, &kernel).unwrap();
            let dist_opts =
                ExecutorOptions { backend: ExecutorBackend::ThreadedDist, ..opts.clone() };
            let dist = execute_threaded(&g, &dist_opts, &kernel).unwrap();
            let asy = execute_async(&g, &opts, &kernel).unwrap();
            prop_assert_eq!(&seq.outputs, &thr.outputs);
            prop_assert_eq!(&seq.outputs, &dist.outputs);
            prop_assert_eq!(&seq.outputs, &asy.outputs);
        }
    }

    /// Watermark-safety fuzz for the streamed data plane. On a random
    /// chain, [`ReduceKernel`] task `t` of op `i` reads cell `t` of op
    /// `i-1` — exactly the cell the watermark protocol must have
    /// published before the claim that handed out `t`. A consumer
    /// claiming at or above a producer's watermark would read an
    /// unwritten (zero) cell, and the wrong value would propagate down
    /// the chain into a bitwise mismatch against the sequential
    /// reference. `forced_batch` sweeps the publication granularity
    /// (including `Some(1)`, the publication-per-task hammer); high
    /// `cv` skews costs so dist-TAPER migrates tasks between home
    /// queues and the shared queues steal, stressing watermark
    /// monotonicity under reordered commits (out-of-order commits park
    /// in the frontier's pending list and can only *raise* the
    /// published prefix — bounded by one publication per task).
    #[test]
    fn streamed_chain_reads_stay_below_watermarks(
        depth in 2usize..7,
        tasks in 2usize..48,
        mean_cost in 0.5f64..3.0,
        cv in 0.0f64..1.5,
        forced_batch in 0usize..9,
        threads in 2usize..4,
    ) {
        use orchestra_runtime::execute_async;
        use orchestra_runtime::threaded::ExecutorBackend;
        use orchestra_runtime::ReduceKernel;
        let g = shapes::chain(depth, tasks, mean_cost, cv);
        let kernel = ReduceKernel::with_scale(1.0);
        for policy in [PolicyKind::SelfSched, PolicyKind::Taper] {
            // 0 means "let HostCalibration choose b*".
            let opts = ExecutorOptions {
                policy,
                threads,
                stream_batch: (forced_batch > 0).then_some(forced_batch),
                ..ExecutorOptions::default()
            };
            let seq = execute_sequential(&g, &opts, &kernel).unwrap();
            let thr = execute_threaded(&g, &opts, &kernel).unwrap();
            let dist_opts =
                ExecutorOptions { backend: ExecutorBackend::ThreadedDist, ..opts.clone() };
            let dist = execute_threaded(&g, &dist_opts, &kernel).unwrap();
            let asy = execute_async(&g, &opts, &kernel).unwrap();
            prop_assert_eq!(&seq.outputs, &thr.outputs);
            prop_assert_eq!(&seq.outputs, &dist.outputs);
            prop_assert_eq!(&seq.outputs, &asy.outputs);
            for run in [&thr, &dist] {
                prop_assert!(
                    run.exec_counts.iter().flatten().all(|&c| c == 1),
                    "exactly-once violated"
                );
                // Non-vacuousness: every chain edge actually streamed.
                prop_assert_eq!(run.streamed_edges, depth - 1);
                for op in &run.ops {
                    // Monotone watermarks publish a strictly larger
                    // prefix each time: at most one publication per
                    // task, and producers publish at least once.
                    prop_assert!(
                        op.watermark_pubs <= tasks as u64,
                        "op {} published {} times for {} tasks",
                        &op.name, op.watermark_pubs, tasks
                    );
                }
                prop_assert!(
                    run.watermark_pubs >= (depth - 1) as u64,
                    "every producer must publish at least once"
                );
            }
        }
    }
}
