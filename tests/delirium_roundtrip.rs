//! Property test: random well-formed Delirium graphs survive the
//! text-format round trip and satisfy the structural invariants
//! (validation, topological order, level consistency, work accounting).

use orchestra_delirium::{DataAnno, DelirGraph, NodeKind, Population};
use proptest::prelude::*;

fn gen_kind() -> impl Strategy<Value = NodeKind> {
    prop_oneof![
        (1.0f64..1000.0).prop_map(|cost| NodeKind::Task { cost }),
        (1.0f64..500.0).prop_map(|cost| NodeKind::Merge { cost }),
        (1usize..5000, 0.5f64..200.0, 0.0f64..2.0)
            .prop_map(|(tasks, mean_cost, cv)| NodeKind::DataParallel { tasks, mean_cost, cv }),
        proptest::collection::vec((1usize..1000, 1.0f64..100.0, 0.0f64..1.5), 1..4).prop_map(
            |pops| NodeKind::Mixture {
                populations: pops
                    .into_iter()
                    .map(|(tasks, mean_cost, cv)| Population { tasks, mean_cost, cv })
                    .collect(),
            }
        ),
    ]
}

/// A random DAG: nodes n0..nk, forward edges only (guaranteed acyclic),
/// plus optional carried back-edges inside a group.
fn gen_graph() -> impl Strategy<Value = DelirGraph> {
    (2usize..9).prop_flat_map(|n| {
        let kinds = proptest::collection::vec(gen_kind(), n);
        let edges = proptest::collection::vec((0usize..n, 0usize..n, 1u64..100_000), 0..(n * 2));
        let groups = proptest::collection::vec(proptest::bool::ANY, n);
        (kinds, edges, groups).prop_map(move |(kinds, edges, groups)| {
            let mut g = DelirGraph::new();
            for (i, kind) in kinds.into_iter().enumerate() {
                let group = groups[i].then(|| "grp".to_string());
                g.add_node(format!("n{i}"), kind, group);
            }
            for (a, b, count) in edges {
                let (from, to) = (a.min(b), a.max(b));
                if from == to {
                    continue;
                }
                g.add_edge(from, to, DataAnno::array(format!("d{from}_{to}"), count));
            }
            // One carried edge between grouped nodes, if any exist.
            let grouped: Vec<usize> =
                g.nodes.iter().filter(|x| x.group.is_some()).map(|x| x.id).collect();
            if grouped.len() >= 2 {
                let (x, y) = (grouped[grouped.len() - 1], grouped[0]);
                g.add_carried_edge(x, y, DataAnno::scalar("carried"));
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_graphs_validate_and_round_trip(g in gen_graph()) {
        g.validate().expect("forward-edge graphs are valid");
        let text = orchestra_delirium::print(&g, "rand");
        let (name, parsed) = orchestra_delirium::parse(&text)
            .unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(name, "rand");
        prop_assert_eq!(&parsed, &g);
    }

    #[test]
    fn topo_order_respects_edges(g in gen_graph()) {
        let order = g.topo_order().expect("acyclic");
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for e in g.edges.iter().filter(|e| !e.carried) {
            prop_assert!(pos[&e.from] < pos[&e.to]);
        }
    }

    #[test]
    fn levels_partition_the_nodes(g in gen_graph()) {
        let levels = g.levels().expect("acyclic");
        let mut seen = std::collections::BTreeSet::new();
        for level in &levels {
            for &v in level {
                prop_assert!(seen.insert(v), "node {v} in two levels");
            }
        }
        prop_assert_eq!(seen.len(), g.nodes.len());
        // A node's predecessors sit in strictly earlier levels.
        let level_of: std::collections::HashMap<usize, usize> = levels
            .iter()
            .enumerate()
            .flat_map(|(li, vs)| vs.iter().map(move |&v| (v, li)))
            .collect();
        for e in g.edges.iter().filter(|e| !e.carried) {
            prop_assert!(level_of[&e.from] < level_of[&e.to]);
        }
    }

    #[test]
    fn work_is_nonnegative_and_additive(g in gen_graph()) {
        let total = g.total_work();
        prop_assert!(total >= 0.0);
        let sum: f64 = g.nodes.iter().map(|n| n.kind.total_work()).sum();
        prop_assert!((total - sum).abs() < 1e-9);
        // Critical path never exceeds total work (weights are per-node
        // lower bounds) and is positive when any node has work.
        let cp = g.critical_path().expect("acyclic");
        prop_assert!(cp >= 0.0);
    }

    #[test]
    fn comm_cost_monotone_in_partitioning(g in gen_graph()) {
        // All nodes on one processor: zero; any split: ≥ 0 and equal to
        // the sum over crossing edges.
        let same = vec![0usize; g.nodes.len()];
        prop_assert_eq!(g.comm_cost(&same, 10.0, 0.1), 0.0);
        let alternating: Vec<usize> = (0..g.nodes.len()).map(|i| i % 2).collect();
        prop_assert!(g.comm_cost(&alternating, 10.0, 0.1) >= 0.0);
    }
}
