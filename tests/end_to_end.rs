//! End-to-end integration: every application kernel flows through the
//! whole pipeline (parse → analyze → split/pipeline → Delirium graph →
//! simulated execution), and the evaluation-level orderings hold.

use orchestra_apps::{all_paper_workloads, psirrfan, Scale};
use orchestra_bench::{measure, Config};
use orchestra_core::{graph_of_compiled, Orchestrator};

#[test]
fn every_app_kernel_compiles_and_runs() {
    let orch = Orchestrator::ncube2(128);
    for kernel in [
        orchestra_apps::psirrfan::kernel(),
        orchestra_apps::climate::kernel(),
        orchestra_apps::emu::kernel(),
        orchestra_apps::vortex::kernel(),
    ] {
        let name = kernel.name.clone();
        let compiled = orch.compile(kernel);
        assert!(compiled.exposed_concurrency(), "{name}: no concurrency exposed");
        let (g, iters) = graph_of_compiled(&compiled);
        g.validate().unwrap_or_else(|e| panic!("{name}: invalid graph: {e}"));
        assert!(!iters.is_empty(), "{name}: no pipeline");
        let report = orch.run(&compiled);
        assert!(report.finish > 0.0, "{name}");
        let baseline = orch.run_baseline(&compiled.original);
        assert!(baseline.finish > 0.0, "{name}");
    }
}

#[test]
fn split_beats_taper_on_every_app_at_scale() {
    // The paper's headline: the orchestrated configuration outperforms
    // the barriered TAPER configuration at high processor counts.
    for w in all_paper_workloads() {
        let tp = measure(&w, Config::Taper, 1024);
        let sp = measure(&w, Config::TaperSplit, 1024);
        assert!(
            sp.speedup > tp.speedup,
            "{}: split {} must beat TAPER {} at 1024 procs",
            w.name,
            sp.speedup,
            tp.speedup
        );
    }
}

#[test]
fn taper_beats_static_at_scale() {
    for w in all_paper_workloads() {
        let st = measure(&w, Config::Static, 512);
        let tp = measure(&w, Config::Taper, 512);
        assert!(
            tp.speedup >= st.speedup * 0.95,
            "{}: TAPER {} should not lose to static {} at 512 procs",
            w.name,
            tp.speedup,
            st.speedup
        );
    }
}

#[test]
fn fig6_divergence_grows_with_processors() {
    // The gap between split and TAPER-only widens from 128 to 1024
    // processors (the shape of Figure 6).
    let w = psirrfan::workload(&psirrfan::paper_scale());
    let gap = |p: usize| {
        measure(&w, Config::TaperSplit, p).speedup / measure(&w, Config::Taper, p).speedup
    };
    let g128 = gap(128);
    let g1024 = gap(1024);
    assert!(
        g1024 >= g128 * 0.9,
        "divergence must not collapse: {g128:.2} at 128 vs {g1024:.2} at 1024"
    );
    assert!(g1024 > 1.1, "split must clearly win at 1024 ({g1024:.2}×)");
}

#[test]
fn split_efficiency_sustained_through_1024() {
    // "…sustained efficiency … using up to 1024 processors": doubling
    // 512 → 1024 with split loses far less than half the efficiency.
    let w = psirrfan::workload(&psirrfan::paper_scale());
    let e512 = measure(&w, Config::TaperSplit, 512).efficiency;
    let e1024 = measure(&w, Config::TaperSplit, 1024).efficiency;
    assert!(e1024 > 0.6 * e512, "efficiency collapse: {e512:.2} → {e1024:.2}");
    assert!(e1024 > 0.4, "absolute efficiency too low: {e1024:.2}");
}

#[test]
fn small_scale_apps_still_ordered() {
    // The orderings also hold away from the calibrated paper scale.
    let w = psirrfan::workload(&Scale { n: 1024, seed: 3 });
    let tp = measure(&w, Config::Taper, 512);
    let sp = measure(&w, Config::TaperSplit, 512);
    assert!(sp.speedup > tp.speedup);
}

#[test]
fn delirium_text_round_trips_app_graphs() {
    for w in all_paper_workloads() {
        for (label, g) in [("baseline", &w.baseline), ("split", &w.split)] {
            let text = orchestra_delirium::print(g, w.name);
            let (name, parsed) = orchestra_delirium::parse(&text)
                .unwrap_or_else(|e| panic!("{} {label}: {e}\n{text}", w.name));
            assert_eq!(name, w.name);
            assert_eq!(&parsed, g, "{} {label}", w.name);
        }
    }
}
