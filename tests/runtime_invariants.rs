//! Property tests on the runtime's scheduling invariants: every policy
//! executes every task exactly once, conserves work, and respects the
//! trivial lower bounds; distributed TAPER additionally preserves
//! locality on regular work.

use orchestra_delirium::{DataAnno, DelirGraph, NodeKind};
use orchestra_machine::{CostDistribution, MachineConfig};
use orchestra_runtime::{
    execute_graph, simulate_dist_taper, simulate_policy, ExecutorOptions, OpOptions, PolicyKind,
};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Static),
        Just(PolicyKind::SelfSched),
        Just(PolicyKind::Gss),
        Just(PolicyKind::Factoring),
        Just(PolicyKind::Taper),
        Just(PolicyKind::TaperCostFn),
    ]
}

fn any_distribution() -> impl Strategy<Value = CostDistribution> {
    prop_oneof![
        (1.0f64..100.0).prop_map(|mean| CostDistribution::Constant { mean }),
        (1.0f64..100.0, 0.0f64..0.9)
            .prop_map(|(mean, spread)| CostDistribution::Uniform { mean, spread }),
        (1.0f64..50.0, 0.05f64..0.5, 2.0f64..10.0).prop_map(|(mean, f, m)| {
            CostDistribution::Bimodal { mean, heavy_frac: f, heavy_mult: m }
        }),
        (1.0f64..50.0, 0.05f64..0.4, 2.0f64..8.0, 4usize..64).prop_map(|(mean, f, m, cl)| {
            CostDistribution::ClusteredBimodal { mean, heavy_frac: f, heavy_mult: m, cluster: cl }
        }),
    ]
}

/// Builds a random-but-valid DAG from a flat spec list: node `i > 0`
/// gets an edge from node `pred_sel % i`, so edges always point
/// backwards.
fn build_graph(specs: &[(u8, usize, f64, usize)], cv: f64) -> (DelirGraph, usize) {
    let mut g = DelirGraph::new();
    let mut ids = Vec::new();
    for (i, &(kind_sel, tasks, mean, pred_sel)) in specs.iter().enumerate() {
        let kind = match kind_sel {
            0 => NodeKind::Task { cost: mean },
            1 => NodeKind::Merge { cost: mean },
            _ => NodeKind::DataParallel { tasks, mean_cost: mean, cv },
        };
        let id = g.add_node(format!("n{i}"), kind, None);
        if i > 0 {
            let from = ids[pred_sel % i];
            g.add_edge(from, id, DataAnno::array(format!("e{i}"), tasks as u64));
        }
        ids.push(id);
    }
    let count = ids.len();
    (g, count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_policy_conserves_tasks_and_work(
        kind in any_policy(),
        dist in any_distribution(),
        n in 1usize..600,
        p_exp in 0u32..8,
        seed in 0u64..1000,
    ) {
        let p = 1usize << p_exp;
        let costs = dist.sample(n, seed);
        let total: f64 = costs.iter().sum();
        let cfg = MachineConfig::ncube2(p);
        let r = simulate_policy(&cfg, p, &costs, kind, &OpOptions::default());

        // Every task ran exactly once; busy time is conserved.
        prop_assert_eq!(r.stats.total_tasks(), n as u64);
        prop_assert!((r.stats.total_busy() - total).abs() < 1e-6 * total.max(1.0));

        // Trivial lower bounds.
        let max_task = costs.iter().fold(0.0f64, |a, &b| a.max(b));
        prop_assert!(r.finish + 1e-9 >= total / p as f64);
        prop_assert!(r.finish + 1e-9 >= max_task);

        // Upper bound: even serial execution plus all overheads cannot
        // exceed total + per-chunk overhead + transfers, generously.
        let bound = total
            + r.chunks as f64 * cfg.sched_overhead
            + r.migrated_tasks as f64 * cfg.msg_time(0, p - 1, 10_000)
            + 1.0;
        prop_assert!(r.finish <= bound, "finish {} > bound {}", r.finish, bound);
    }

    #[test]
    fn simulation_is_deterministic(
        kind in any_policy(),
        n in 1usize..300,
        seed in 0u64..100,
    ) {
        let costs =
            CostDistribution::HeavyTail { mean: 20.0, sigma: 1.0 }.sample(n, seed);
        let cfg = MachineConfig::ncube2(32);
        let a = simulate_policy(&cfg, 32, &costs, kind, &OpOptions::default());
        let b = simulate_policy(&cfg, 32, &costs, kind, &OpOptions::default());
        prop_assert_eq!(a.finish, b.finish);
        prop_assert_eq!(a.chunks, b.chunks);
    }

    #[test]
    fn dist_taper_conserves_and_bounds(
        dist in any_distribution(),
        n in 1usize..600,
        p_exp in 0u32..7,
        seed in 0u64..500,
    ) {
        let p = 1usize << p_exp;
        let costs = dist.sample(n, seed);
        let total: f64 = costs.iter().sum();
        let cfg = MachineConfig::ncube2(p);
        let r = simulate_dist_taper(&cfg, p, &costs, 64);
        prop_assert_eq!(r.stats.total_tasks(), n as u64);
        prop_assert!((r.stats.total_busy() - total).abs() < 1e-6 * total.max(1.0));
        prop_assert!(r.finish + 1e-9 >= total / p as f64);
        prop_assert!((0.0..=1.0).contains(&r.locality));
    }

    #[test]
    fn graph_finish_within_critical_path_and_serial_bounds(
        kind in any_policy(),
        specs in proptest::collection::vec(
            (0u8..3, 1usize..150, 1.0f64..40.0, 0usize..100),
            1..7,
        ),
        p_exp in 0u32..7,
    ) {
        // Regular work (cv = 0) makes both bounds exact: every task
        // costs exactly its nominal mean, so the graph's critical path
        // (mean per data-parallel node, full cost per task node) is a
        // true lower bound and serial work plus per-task/per-edge
        // overhead a true upper bound.
        let p = 1usize << p_exp;
        let (g, _) = build_graph(&specs, 0.0);
        // The allocator needs one processor per concurrent operation.
        let width = g.levels().unwrap().iter().map(Vec::len).max().unwrap_or(1);
        prop_assume!(p >= width);
        let cfg = MachineConfig::ncube2(p);
        let opts = ExecutorOptions { policy: kind, ..ExecutorOptions::default() };
        let r = execute_graph(&g, &cfg, &opts).unwrap();

        let critical = g.critical_path().unwrap();
        prop_assert!(
            r.finish + 1e-6 >= critical,
            "finish {} below critical path {critical}", r.finish
        );
        prop_assert!(
            r.finish + 1e-6 >= g.total_work() / p as f64,
            "finish {} below work bound {}", r.finish, g.total_work() / p as f64
        );

        let tasks: usize = g.nodes.iter().map(|n| n.kind.task_count()).sum();
        let per_event = cfg.sched_overhead
            + cfg.alpha
            + cfg.hop * cfg.diameter() as f64
            + cfg.beta * 4096.0;
        let bound = g.total_work()
            + 2.0 * (tasks + g.edges.len() + g.nodes.len()) as f64 * per_event
            + 10_000.0;
        prop_assert!(
            r.finish <= bound,
            "finish {} above generous serial bound {bound}", r.finish
        );
    }

    #[test]
    fn graph_execution_is_deterministic(
        kind in any_policy(),
        specs in proptest::collection::vec(
            (0u8..3, 1usize..150, 1.0f64..40.0, 0usize..100),
            1..7,
        ),
        cv in 0.0f64..1.8,
        p_exp in 0u32..7,
        seed in 0u64..1000,
    ) {
        // Same graph + same seed must reproduce the run bit-for-bit:
        // every start/finish, allocation, and the aggregate work.
        let p = 1usize << p_exp;
        let (g, _) = build_graph(&specs, cv);
        let width = g.levels().unwrap().iter().map(Vec::len).max().unwrap_or(1);
        prop_assume!(p >= width);
        let cfg = MachineConfig::ncube2(p);
        let opts = ExecutorOptions { policy: kind, seed, ..ExecutorOptions::default() };
        let a = execute_graph(&g, &cfg, &opts).unwrap();
        let b = execute_graph(&g, &cfg, &opts).unwrap();
        prop_assert_eq!(a.finish.to_bits(), b.finish.to_bits());
        prop_assert_eq!(a.serial_work.to_bits(), b.serial_work.to_bits());
        prop_assert_eq!(a.processors, b.processors);
        prop_assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            prop_assert_eq!(&x.name, &y.name);
            prop_assert_eq!(x.start.to_bits(), y.start.to_bits());
            prop_assert_eq!(x.finish.to_bits(), y.finish.to_bits());
            prop_assert_eq!(x.procs, y.procs);
        }
    }

    #[test]
    fn constant_work_stays_local_in_dist_taper(
        n in 64usize..400,
        p_exp in 2u32..6,
    ) {
        let p = 1usize << p_exp;
        let costs = vec![10.0; n];
        let cfg = MachineConfig::ncube2(p);
        let r = simulate_dist_taper(&cfg, p, &costs, 64);
        prop_assert!(
            r.locality >= 0.95,
            "uniform work must stay on its owners, locality {}",
            r.locality
        );
    }
}
