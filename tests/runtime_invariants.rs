//! Property tests on the runtime's scheduling invariants: every policy
//! executes every task exactly once, conserves work, and respects the
//! trivial lower bounds; distributed TAPER additionally preserves
//! locality on regular work.

use orchestra_machine::{CostDistribution, MachineConfig};
use orchestra_runtime::{
    simulate_dist_taper, simulate_policy, OpOptions, PolicyKind,
};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Static),
        Just(PolicyKind::SelfSched),
        Just(PolicyKind::Gss),
        Just(PolicyKind::Factoring),
        Just(PolicyKind::Taper),
        Just(PolicyKind::TaperCostFn),
    ]
}

fn any_distribution() -> impl Strategy<Value = CostDistribution> {
    prop_oneof![
        (1.0f64..100.0).prop_map(|mean| CostDistribution::Constant { mean }),
        (1.0f64..100.0, 0.0f64..0.9)
            .prop_map(|(mean, spread)| CostDistribution::Uniform { mean, spread }),
        (1.0f64..50.0, 0.05f64..0.5, 2.0f64..10.0).prop_map(|(mean, f, m)| {
            CostDistribution::Bimodal { mean, heavy_frac: f, heavy_mult: m }
        }),
        (1.0f64..50.0, 0.05f64..0.4, 2.0f64..8.0, 4usize..64).prop_map(
            |(mean, f, m, cl)| CostDistribution::ClusteredBimodal {
                mean,
                heavy_frac: f,
                heavy_mult: m,
                cluster: cl,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_policy_conserves_tasks_and_work(
        kind in any_policy(),
        dist in any_distribution(),
        n in 1usize..600,
        p_exp in 0u32..8,
        seed in 0u64..1000,
    ) {
        let p = 1usize << p_exp;
        let costs = dist.sample(n, seed);
        let total: f64 = costs.iter().sum();
        let cfg = MachineConfig::ncube2(p);
        let r = simulate_policy(&cfg, p, &costs, kind, &OpOptions::default());

        // Every task ran exactly once; busy time is conserved.
        prop_assert_eq!(r.stats.total_tasks(), n as u64);
        prop_assert!((r.stats.total_busy() - total).abs() < 1e-6 * total.max(1.0));

        // Trivial lower bounds.
        let max_task = costs.iter().fold(0.0f64, |a, &b| a.max(b));
        prop_assert!(r.finish + 1e-9 >= total / p as f64);
        prop_assert!(r.finish + 1e-9 >= max_task);

        // Upper bound: even serial execution plus all overheads cannot
        // exceed total + per-chunk overhead + transfers, generously.
        let bound = total
            + r.chunks as f64 * cfg.sched_overhead
            + r.migrated_tasks as f64 * cfg.msg_time(0, p - 1, 10_000)
            + 1.0;
        prop_assert!(r.finish <= bound, "finish {} > bound {}", r.finish, bound);
    }

    #[test]
    fn simulation_is_deterministic(
        kind in any_policy(),
        n in 1usize..300,
        seed in 0u64..100,
    ) {
        let costs =
            CostDistribution::HeavyTail { mean: 20.0, sigma: 1.0 }.sample(n, seed);
        let cfg = MachineConfig::ncube2(32);
        let a = simulate_policy(&cfg, 32, &costs, kind, &OpOptions::default());
        let b = simulate_policy(&cfg, 32, &costs, kind, &OpOptions::default());
        prop_assert_eq!(a.finish, b.finish);
        prop_assert_eq!(a.chunks, b.chunks);
    }

    #[test]
    fn dist_taper_conserves_and_bounds(
        dist in any_distribution(),
        n in 1usize..600,
        p_exp in 0u32..7,
        seed in 0u64..500,
    ) {
        let p = 1usize << p_exp;
        let costs = dist.sample(n, seed);
        let total: f64 = costs.iter().sum();
        let cfg = MachineConfig::ncube2(p);
        let r = simulate_dist_taper(&cfg, p, &costs, 64);
        prop_assert_eq!(r.stats.total_tasks(), n as u64);
        prop_assert!((r.stats.total_busy() - total).abs() < 1e-6 * total.max(1.0));
        prop_assert!(r.finish + 1e-9 >= total / p as f64);
        prop_assert!((0.0..=1.0).contains(&r.locality));
    }

    #[test]
    fn constant_work_stays_local_in_dist_taper(
        n in 64usize..400,
        p_exp in 2u32..6,
    ) {
        let p = 1usize << p_exp;
        let costs = vec![10.0; n];
        let cfg = MachineConfig::ncube2(p);
        let r = simulate_dist_taper(&cfg, p, &costs, 64);
        prop_assert!(
            r.locality >= 0.95,
            "uniform work must stay on its owners, locality {}",
            r.locality
        );
    }
}
