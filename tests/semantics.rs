//! Property tests: the split and pipelining transformations are
//! semantics-preserving. The MF interpreter runs the original and
//! transformed programs on random inputs and the final stores must
//! agree.

use orchestra_core::compile;
use orchestra_lang::ast::Program;
use orchestra_lang::builder::{figure1_program, figure4_program};
use orchestra_lang::interp::{Env, Interp, Value};
use orchestra_split::SplitOptions;
use proptest::prelude::*;

/// Runs `prog` and its compiled transformation on the given inputs and
/// compares every non-induction variable.
fn assert_equivalent(prog: &Program, inputs: &Env) {
    let compiled = compile(prog.clone(), &SplitOptions::default());
    let e1 = Interp::new().run(prog, inputs).expect("original runs");
    let e2 = Interp::new().run(&compiled.transformed, inputs).expect("transformed runs");
    let mut ivs = std::collections::BTreeSet::new();
    collect_ivs(&prog.body, &mut ivs);
    collect_ivs(&compiled.transformed.body, &mut ivs);
    for (name, v) in &e1 {
        if ivs.contains(name) {
            continue;
        }
        let got = e2.get(name).unwrap_or_else(|| panic!("missing {name}"));
        match (v, got) {
            (Value::FloatArray { data: a, .. }, Value::FloatArray { data: b, .. }) => {
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    prop_assert_close(name, i, *x, *y);
                }
            }
            (Value::Float(a), Value::Float(b)) => prop_assert_close(name, 0, *a, *b),
            _ => assert_eq!(v, got, "{name}"),
        }
    }
}

fn prop_assert_close(name: &str, i: usize, x: f64, y: f64) {
    assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{name}[{i}]: {x} vs {y}");
}

fn collect_ivs(stmts: &[orchestra_lang::ast::Stmt], out: &mut std::collections::BTreeSet<String>) {
    use orchestra_lang::ast::Stmt;
    for s in stmts {
        match s {
            Stmt::Do { var, body, .. } => {
                out.insert(var.clone());
                collect_ivs(body, out);
            }
            Stmt::If { then_body, else_body, .. } => {
                collect_ivs(then_body, out);
                collect_ivs(else_body, out);
            }
            _ => {}
        }
    }
}

fn float_array(n: usize, seedish: &[f64]) -> Value {
    Value::FloatArray { dims: vec![(1, n as i64)], data: seedish.to_vec() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Figure 1 (split of B + pipeline of A) over random sizes, masks,
    /// and data.
    #[test]
    fn figure1_transformation_preserves_semantics(
        n in 3usize..10,
        mask_bits in proptest::collection::vec(0i64..2, 10),
        data in proptest::collection::vec(-8.0f64..8.0, 100),
    ) {
        let prog = figure1_program(n as i64);
        let mut inputs = Env::new();
        inputs.insert(
            "mask".into(),
            Value::IntArray {
                dims: vec![(1, n as i64)],
                data: mask_bits[..n].to_vec(),
            },
        );
        inputs.insert(
            "q".into(),
            Value::FloatArray {
                dims: vec![(1, n as i64), (1, n as i64)],
                data: data[..n * n].to_vec(),
            },
        );
        assert_equivalent(&prog, &inputs);
    }

    /// Figure 4 (split of the reduction loop H) over random sizes,
    /// split rows, and data.
    #[test]
    fn figure4_transformation_preserves_semantics(
        n in 3usize..9,
        a_frac in 0.0f64..1.0,
        x in proptest::collection::vec(-4.0f64..4.0, 81),
        y in proptest::collection::vec(-4.0f64..4.0, 9),
    ) {
        let a = 1 + ((n - 1) as f64 * a_frac) as i64;
        let prog = figure4_program(n as i64, a);
        let mut inputs = Env::new();
        inputs.insert(
            "x".into(),
            Value::FloatArray {
                dims: vec![(1, n as i64), (1, n as i64)],
                data: x[..n * n].to_vec(),
            },
        );
        inputs.insert("y".into(), float_array(n, &y[..n]));
        assert_equivalent(&prog, &inputs);
    }

    /// The app kernels (all four share the Figure 1 interaction shape
    /// at different names) also transform correctly. Sizes are fixed by
    /// the kernels; the data is random.
    #[test]
    fn app_kernels_preserve_semantics(which in 0usize..4, seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let kernel = match which {
            0 => orchestra_apps::psirrfan::kernel(),
            1 => orchestra_apps::climate::kernel(),
            2 => orchestra_apps::emu::kernel(),
            _ => orchestra_apps::vortex::kernel(),
        };
        // Find the mask array (integer array) and the main 2-D array.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut inputs = Env::new();
        let probe = Interp::new().run(&kernel, &Env::new()).expect("kernel runs");
        for (name, v) in &probe {
            match v {
                Value::IntArray { dims, data } => {
                    inputs.insert(
                        name.clone(),
                        Value::IntArray {
                            dims: dims.clone(),
                            data: data.iter().map(|_| rng.gen_range(0..2)).collect(),
                        },
                    );
                }
                Value::FloatArray { dims, data } => {
                    inputs.insert(
                        name.clone(),
                        Value::FloatArray {
                            dims: dims.clone(),
                            data: data.iter().map(|_| rng.gen_range(-4.0..4.0)).collect(),
                        },
                    );
                }
                _ => {}
            }
        }
        assert_equivalent(&kernel, &inputs);
    }
}
